#include <gtest/gtest.h>

#include <random>
#include <set>

#include "delaunay/udg.hpp"
#include "graph/dsu.hpp"
#include "graph/graph.hpp"
#include "graph/planar_faces.hpp"
#include "graph/shortest_path.hpp"

namespace hybrid::graph {
namespace {

GeometricGraph pathGraph(int n) {
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({static_cast<double>(i), 0.0});
  GeometricGraph g(pts);
  for (int i = 0; i + 1 < n; ++i) g.addEdge(i, i + 1);
  return g;
}

TEST(GeometricGraph, EdgeBookkeeping) {
  GeometricGraph g({{0, 0}, {1, 0}, {0, 1}});
  g.addEdge(0, 1);
  g.addEdge(0, 1);  // duplicate ignored
  g.addEdge(1, 0);  // reversed duplicate ignored
  g.addEdge(0, 0);  // self loop ignored
  EXPECT_EQ(g.numEdges(), 1u);
  EXPECT_TRUE(g.hasEdge(1, 0));
  g.addEdge(1, 2);
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.maxDegree(), 2);
  g.removeEdge(0, 1);
  EXPECT_FALSE(g.hasEdge(0, 1));
  EXPECT_EQ(g.numEdges(), 1u);
}

TEST(GeometricGraph, ComponentsAndConnectivity) {
  GeometricGraph g({{0, 0}, {1, 0}, {5, 5}, {6, 5}});
  g.addEdge(0, 1);
  g.addEdge(2, 3);
  int k = 0;
  const auto labels = g.componentLabels(&k);
  EXPECT_EQ(k, 2);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_NE(labels[0], labels[2]);
  EXPECT_FALSE(g.isConnected());
  g.addEdge(1, 2);
  EXPECT_TRUE(g.isConnected());
}

TEST(GeometricGraph, PathLength) {
  const auto g = pathGraph(4);
  const std::vector<NodeId> p{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(g.pathLength(p), 3.0);
  EXPECT_TRUE(std::isinf(g.pathLength(std::vector<NodeId>{})));
}

TEST(GeometricGraph, PlanarityCheck) {
  GeometricGraph g({{0, 0}, {2, 2}, {0, 2}, {2, 0}});
  g.addEdge(0, 1);
  EXPECT_TRUE(g.isPlanarEmbedding());
  g.addEdge(2, 3);  // crosses 0-1
  EXPECT_FALSE(g.isPlanarEmbedding());
}

TEST(ShortestPath, DijkstraOnPath) {
  const auto g = pathGraph(6);
  const auto tree = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(tree.dist[5], 5.0);
  EXPECT_EQ(tree.pathTo(5).size(), 6u);
  EXPECT_EQ(tree.pathTo(5).front(), 0);
  EXPECT_EQ(tree.pathTo(5).back(), 5);
}

TEST(ShortestPath, UnreachableTarget) {
  GeometricGraph g({{0, 0}, {1, 0}, {9, 9}});
  g.addEdge(0, 1);
  const auto tree = dijkstra(g, 0);
  EXPECT_TRUE(std::isinf(tree.dist[2]));
  EXPECT_TRUE(tree.pathTo(2).empty());
  EXPECT_TRUE(astarPath(g, 0, 2).empty());
}

TEST(ShortestPath, AStarAgreesWithDijkstra) {
  std::mt19937 rng(21);
  std::uniform_real_distribution<double> d(0.0, 12.0);
  std::vector<geom::Vec2> pts(300);
  for (auto& p : pts) p = {d(rng), d(rng)};
  const auto g = delaunay::buildUnitDiskGraph(pts, 1.3);
  std::uniform_int_distribution<int> pick(0, 299);
  for (int it = 0; it < 60; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const double dd = dijkstra(g, s, t).dist[static_cast<std::size_t>(t)];
    const auto ap = astarPath(g, s, t);
    if (std::isinf(dd)) {
      EXPECT_TRUE(ap.empty());
    } else {
      EXPECT_NEAR(g.pathLength(ap), dd, 1e-9);
    }
  }
}

TEST(ShortestPath, BfsHopsAndKHop) {
  const auto g = pathGraph(7);
  const auto hops = bfsHops(g, 3);
  EXPECT_EQ(hops[0], 3);
  EXPECT_EQ(hops[6], 3);
  const auto bounded = bfsHops(g, 3, 2);
  EXPECT_EQ(bounded[0], -1);
  EXPECT_EQ(bounded[1], 2);
  const auto nbh = kHopNeighborhood(g, 3, 2);
  EXPECT_EQ(nbh.size(), 5u);  // 1,2,3,4,5
}

TEST(Dsu, UnionFind) {
  DisjointSetUnion dsu(6);
  EXPECT_TRUE(dsu.unite(0, 1));
  EXPECT_TRUE(dsu.unite(1, 2));
  EXPECT_FALSE(dsu.unite(0, 2));
  EXPECT_TRUE(dsu.same(0, 2));
  EXPECT_FALSE(dsu.same(0, 3));
  EXPECT_EQ(dsu.setSize(2), 3);
  EXPECT_EQ(dsu.setSize(5), 1);
}

TEST(PlanarFaces, TriangleHasTwoFaces) {
  GeometricGraph g({{0, 0}, {1, 0}, {0, 1}});
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(2, 0);
  const auto faces = enumerateFaces(g);
  ASSERT_EQ(faces.size(), 2u);
  int outer = 0;
  for (const auto& f : faces) {
    EXPECT_EQ(f.cycle.size(), 3u);
    if (f.outer) ++outer;
  }
  EXPECT_EQ(outer, 1);
}

TEST(PlanarFaces, EulerFormulaOnRandomPlanarGraph) {
  // UDG of a jittered grid is planar? Not necessarily; use a Delaunay-free
  // construction: a grid graph (axis-aligned edges only) is planar.
  const int side = 8;
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) pts.push_back({static_cast<double>(x), static_cast<double>(y)});
  }
  GeometricGraph g(pts);
  auto id = [side](int x, int y) { return y * side + x; };
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      if (x + 1 < side) g.addEdge(id(x, y), id(x + 1, y));
      if (y + 1 < side) g.addEdge(id(x, y), id(x, y + 1));
    }
  }
  const auto faces = enumerateFaces(g);
  // Euler: V - E + F = 2 for connected planar graphs.
  EXPECT_EQ(static_cast<long>(g.numNodes()) - static_cast<long>(g.numEdges()) +
                static_cast<long>(faces.size()),
            2);
  // Exactly one outer face, and every inner face is a unit square.
  int outer = 0;
  for (const auto& f : faces) {
    if (f.outer) {
      ++outer;
    } else {
      EXPECT_EQ(f.cycle.size(), 4u);
      EXPECT_NEAR(f.signedArea2, 2.0, 1e-12);  // area 1, ccw
    }
  }
  EXPECT_EQ(outer, 1);
}

TEST(PlanarFaces, FaceWalksCoverEveryDirectedEdgeOnce) {
  GeometricGraph g({{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}});
  for (int i = 0; i < 4; ++i) g.addEdge(i, (i + 1) % 4);
  for (int i = 0; i < 4; ++i) g.addEdge(i, 4);
  const auto faces = enumerateFaces(g);
  std::size_t totalDirected = 0;
  for (const auto& f : faces) totalDirected += f.cycle.size();
  EXPECT_EQ(totalDirected, 2 * g.numEdges());
  EXPECT_EQ(faces.size(), 5u);  // 4 triangles + outer
}

}  // namespace
}  // namespace hybrid::graph
