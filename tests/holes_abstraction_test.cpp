#include <gtest/gtest.h>

#include <numbers>
#include <set>

#include "abstraction/dominating_set.hpp"
#include "abstraction/hole_abstraction.hpp"
#include "core/hybrid_network.hpp"
#include "geom/angle.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

scenario::Scenario hexHoleScenario(unsigned seed = 21, double side = 18.0) {
  scenario::ScenarioParams p;
  p.width = p.height = side;
  p.seed = seed;
  p.obstacles.push_back(scenario::regularPolygonObstacle({side / 2, side / 2}, 3.0, 6));
  return scenario::makeScenario(p);
}

TEST(Holes, RingsAreClosedWalksOfGraphEdges) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& h : net.holes().holes) {
    if (h.outer) continue;  // outer holes use one synthetic hull edge
    ASSERT_GE(h.ring.size(), 4u);
    for (std::size_t i = 0; i < h.ring.size(); ++i) {
      EXPECT_TRUE(net.ldel().hasEdge(h.ring[i], h.ring[(i + 1) % h.ring.size()]))
          << "ring edge " << i;
    }
  }
}

TEST(Holes, InnerHoleRingsTurnCounterClockwise) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  int checked = 0;
  for (const auto& h : net.holes().holes) {
    std::vector<geom::Vec2> ring;
    std::set<graph::NodeId> distinct(h.ring.begin(), h.ring.end());
    if (distinct.size() != h.ring.size()) continue;  // skip pinched walks
    for (graph::NodeId v : h.ring) ring.push_back(net.ldel().position(v));
    EXPECT_NEAR(geom::turningSum(ring), 2.0 * std::numbers::pi, 1e-6);
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST(Holes, OuterBoundaryTurnsClockwise) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  const auto& ob = net.holes().outerBoundary;
  ASSERT_GE(ob.size(), 3u);
  std::set<graph::NodeId> distinct(ob.begin(), ob.end());
  if (distinct.size() == ob.size()) {
    std::vector<geom::Vec2> ring;
    for (graph::NodeId v : ob) ring.push_back(net.ldel().position(v));
    EXPECT_NEAR(geom::turningSum(ring), -2.0 * std::numbers::pi, 1e-6);
  }
}

TEST(Holes, NoNodeInsideAnyHolePolygon) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& h : net.holes().holes) {
    if (h.outer) continue;
    const std::set<graph::NodeId> onRing(h.ring.begin(), h.ring.end());
    for (int v = 0; v < static_cast<int>(net.ldel().numNodes()); ++v) {
      if (onRing.contains(v)) continue;
      EXPECT_FALSE(h.polygon.containsStrict(net.ldel().position(v)))
          << "node " << v << " inside hole";
    }
  }
}

TEST(Holes, HoleNodeFlagsConsistent) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  const auto& analysis = net.holes();
  for (std::size_t hi = 0; hi < analysis.holes.size(); ++hi) {
    for (graph::NodeId v : analysis.holes[hi].ring) {
      EXPECT_TRUE(analysis.isHoleNode[static_cast<std::size_t>(v)]);
      const auto& list = analysis.holesOfNode[static_cast<std::size_t>(v)];
      EXPECT_NE(std::find(list.begin(), list.end(), static_cast<int>(hi)), list.end());
    }
  }
}

TEST(Abstraction, LocallyConvexHullInvariant) {
  // Definition 4.1 at the fixpoint: no three consecutive nodes u,v,w with
  // a reflex angle and ||uw|| <= 1 remain.
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& a : net.abstractions()) {
    const auto& lch = a.locallyConvexHull;
    if (lch.size() < 3) continue;
    for (std::size_t i = 0; i < lch.size(); ++i) {
      const auto u = lch[(i + lch.size() - 1) % lch.size()];
      const auto v = lch[i];
      const auto w = lch[(i + 1) % lch.size()];
      const double turn = geom::signedTurnAngle(
          net.ldel().position(u), net.ldel().position(v), net.ldel().position(w));
      if (turn <= 0.0) {
        EXPECT_GT(net.ldel().edgeLength(u, w), 1.0)
            << "reflex shortcut still <= 1 at " << v;
      }
    }
  }
}

TEST(Abstraction, HullNodesLieOnTheirRing) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& a : net.abstractions()) {
    const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
    const std::set<graph::NodeId> ringSet(ring.begin(), ring.end());
    for (graph::NodeId v : a.hullNodes) EXPECT_TRUE(ringSet.contains(v));
  }
}

TEST(Abstraction, BaysPartitionTheRing) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& a : net.abstractions()) {
    const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
    std::set<graph::NodeId> distinct(ring.begin(), ring.end());
    if (distinct.size() != ring.size()) continue;
    // Every ring node is either a hull node or in exactly one bay chain.
    std::set<graph::NodeId> covered(a.hullNodes.begin(), a.hullNodes.end());
    for (const auto& bay : a.bays) {
      for (graph::NodeId v : bay.chain) {
        EXPECT_TRUE(covered.insert(v).second) << "node " << v << " in two bays";
      }
      // Bay endpoints are hull nodes.
      EXPECT_NE(std::find(a.hullNodes.begin(), a.hullNodes.end(), bay.hullFrom),
                a.hullNodes.end());
      EXPECT_NE(std::find(a.hullNodes.begin(), a.hullNodes.end(), bay.hullTo),
                a.hullNodes.end());
    }
    EXPECT_EQ(covered.size(), distinct.size());
  }
}

TEST(Abstraction, SizesOrdered) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  for (const auto& a : net.abstractions()) {
    const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
    EXPECT_LE(a.hullNodes.size(), a.locallyConvexHull.size());
    EXPECT_LE(a.locallyConvexHull.size(), ring.size());
  }
}

TEST(DominatingSet, PathRuleIsOptimal) {
  for (int k = 1; k <= 30; ++k) {
    std::vector<graph::NodeId> chain;
    for (int i = 0; i < k; ++i) chain.push_back(i);
    const auto ds = abstraction::pathDominatingSet(chain);
    EXPECT_TRUE(abstraction::dominatesChain(chain, ds)) << "k=" << k;
    EXPECT_EQ(ds.size(), static_cast<std::size_t>((k + 2) / 3)) << "k=" << k;
  }
}

TEST(DominatingSet, GreedyOnGraphDominates) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  std::vector<graph::NodeId> targets;
  for (int v = 0; v < 60; ++v) targets.push_back(v);
  const auto ds = abstraction::greedyDominatingSet(net.ldel(), targets);
  const std::set<graph::NodeId> dset(ds.begin(), ds.end());
  for (graph::NodeId v : targets) {
    bool ok = dset.contains(v);
    for (graph::NodeId nb : net.ldel().neighbors(v)) ok = ok || dset.contains(nb);
    EXPECT_TRUE(ok) << "undominated " << v;
  }
}

TEST(DominatingSet, DominatesChainEdgeCases) {
  EXPECT_TRUE(abstraction::dominatesChain({}, {}));
  EXPECT_FALSE(abstraction::dominatesChain({1}, {}));
  EXPECT_TRUE(abstraction::dominatesChain({1}, {1}));
  EXPECT_TRUE(abstraction::dominatesChain({1, 2}, {1}));
  EXPECT_FALSE(abstraction::dominatesChain({1, 2, 3, 4}, {1}));
}

TEST(Storage, HullNodesDominateStorageAndOthersConstant) {
  const auto sc = hexHoleScenario();
  core::HybridNetwork net(sc.points);
  const auto rep = net.storageReport();
  EXPECT_EQ(rep.maxOtherNodeStorage, 1);
  EXPECT_GT(rep.maxHullNodeStorage, rep.maxBoundaryNodeStorage);
  EXPECT_EQ(rep.maxHullNodeStorage, rep.totalHullNodes);
  EXPECT_EQ(rep.perNode.size(), net.ldel().numNodes());
}

}  // namespace
}  // namespace hybrid
