#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "routing/hub_labels.hpp"
#include "routing/overlay_graph.hpp"

namespace hybrid::routing {
namespace {

/// Jittered w x h grid with 4-neighbor edges: irregular weights, many
/// equal-degree nodes (the rank tie-break's worst customer).
graph::CsrAdjacency makeGrid(int w, int h, unsigned seed,
                             std::vector<geom::Vec2>* posOut = nullptr) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.3, 0.3);
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      pos.push_back({x + jitter(rng), y + jitter(rng)});
    }
  }
  std::vector<std::vector<int>> adj(pos.size());
  const auto id = [&](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        adj[static_cast<std::size_t>(id(x, y))].push_back(id(x + 1, y));
        adj[static_cast<std::size_t>(id(x + 1, y))].push_back(id(x, y));
      }
      if (y + 1 < h) {
        adj[static_cast<std::size_t>(id(x, y))].push_back(id(x, y + 1));
        adj[static_cast<std::size_t>(id(x, y + 1))].push_back(id(x, y));
      }
    }
  }
  if (posOut) *posOut = pos;
  return graph::buildCsr(adj, pos);
}

/// n nodes on a unit circle, consecutive edges only. Uniform degree 2:
/// labels stay polylogarithmic only because the rank tie-break is hashed.
graph::CsrAdjacency makeRing(int n) {
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    pos.push_back({std::cos(a), std::sin(a)});
  }
  std::vector<std::vector<int>> adj(pos.size());
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    adj[static_cast<std::size_t>(i)].push_back(j);
    adj[static_cast<std::size_t>(j)].push_back(i);
  }
  return graph::buildCsr(adj, pos);
}

TEST(HubLabels, BuildIsByteIdenticalAtAnyThreadCount) {
  const auto csr = makeGrid(18, 17, 7);
  HubLabelOracle ref;
  ref.build(csr, 1);
  ASSERT_TRUE(ref.built());
  ASSERT_GT(ref.numEntries(), csr.numNodes());  // more than just self entries
  for (const unsigned threads : {2u, 5u, 16u}) {
    HubLabelOracle other;
    other.build(csr, threads);
    EXPECT_EQ(other.offsets(), ref.offsets()) << "threads=" << threads;
    EXPECT_EQ(other.entries(), ref.entries()) << "threads=" << threads;
  }
}

TEST(HubLabels, DistancesAndPathsMatchDijkstra) {
  for (const bool ring : {false, true}) {
    const auto csr = ring ? makeRing(257) : makeGrid(15, 14, 3);
    const int n = static_cast<int>(csr.numNodes());
    HubLabelOracle labels;
    labels.build(csr, 3);

    graph::DijkstraWorkspace ws;
    std::mt19937 rng(11);
    std::uniform_int_distribution<int> pick(0, n - 1);
    std::vector<int> path;
    for (int a = 0; a < 8; ++a) {
      const int s = pick(rng);
      ws.run(csr, s);
      for (int b = 0; b < 12; ++b) {
        const int t = b == 0 ? s : pick(rng);
        const double want = ws.dist(t);
        EXPECT_NEAR(labels.distance(s, t), want, 1e-9 * std::max(1.0, want))
            << "ring=" << ring << " " << s << "->" << t;
        path.clear();
        ASSERT_TRUE(labels.path(s, t, path)) << s << "->" << t;
        ASSERT_FALSE(path.empty());
        EXPECT_EQ(path.front(), s);
        EXPECT_EQ(path.back(), t);
        // Path edges must be real graph edges realizing the distance.
        double len = 0.0;
        for (std::size_t k = 0; k + 1 < path.size(); ++k) {
          const auto nbs = csr.neighbors(path[k]);
          const auto wts = csr.edgeWeights(path[k]);
          double step = -1.0;
          for (std::size_t e = 0; e < nbs.size(); ++e) {
            if (nbs[e] == path[k + 1]) step = wts[e];
          }
          ASSERT_GE(step, 0.0) << "non-edge " << path[k] << "-" << path[k + 1];
          len += step;
        }
        EXPECT_NEAR(len, want, 1e-9 * std::max(1.0, want));
      }
    }
  }
}

TEST(HubLabels, DisconnectedComponentsHaveNoCommonHub) {
  // Two 3-node triangles with no connecting edge.
  const std::vector<geom::Vec2> pos = {{0, 0}, {1, 0}, {0, 1}, {10, 10}, {11, 10}, {10, 11}};
  std::vector<std::vector<int>> adj(6);
  const auto link = [&](int a, int b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(2, 0);
  link(3, 4);
  link(4, 5);
  link(5, 3);
  HubLabelOracle labels;
  labels.build(graph::buildCsr(adj, pos), 2);
  EXPECT_TRUE(std::isinf(labels.distance(0, 4)));
  EXPECT_TRUE(std::isinf(labels.distance(5, 2)));
  std::vector<int> path;
  EXPECT_FALSE(labels.path(0, 4, path));
  EXPECT_TRUE(path.empty());
  EXPECT_LT(labels.distance(0, 2), 2.0);  // within-component stays exact
}

TEST(HubLabels, RingLabelsStayPolylogarithmic) {
  // Uniform degree: every rank decision rides on the hashed tie-break. A
  // monotone (raw-id) order would give Theta(h) labels — ~n^2/2 entries;
  // the hashed order keeps the average label a small multiple of log2(n).
  const int n = 2048;
  const auto csr = makeRing(n);
  HubLabelOracle labels;
  labels.build(csr, 4);
  const double avg = static_cast<double>(labels.numEntries()) / n;
  EXPECT_LT(avg, 8.0 * std::log2(static_cast<double>(n)));
  EXPECT_LT(labels.labelBytes(), static_cast<std::size_t>(n) * n);  // << dense 8B*n/site
}

TEST(HubLabels, EmptyGraphBuilds) {
  HubLabelOracle labels;
  labels.build(graph::CsrAdjacency{}, 2);
  EXPECT_TRUE(labels.built());
  EXPECT_EQ(labels.numSites(), 0u);
  EXPECT_EQ(labels.numEntries(), 0u);
}

TEST(HubLabels, CorruptionIsDetectableAndPathsFailClean) {
  const auto csr = makeGrid(9, 9, 5);
  HubLabelOracle good;
  good.build(csr, 2);
  HubLabelOracle bad;
  bad.build(csr, 2);
  const auto dropped = bad.corruptDropHubForTest(17);
  ASSERT_GE(dropped.site, 0);
  ASSERT_NE(dropped.site, dropped.hub);
  EXPECT_NE(bad.entries(), good.entries());
  EXPECT_EQ(bad.numEntries() + 1, good.numEntries());
  // Every query still terminates and any returned path is still realizable.
  std::vector<int> path;
  const int n = static_cast<int>(csr.numNodes());
  for (int t = 0; t < n; ++t) {
    path.clear();
    if (!bad.path(dropped.site, t, path)) continue;
    EXPECT_EQ(path.front(), dropped.site);
    EXPECT_EQ(path.back(), t);
    EXPECT_LE(path.size(), static_cast<std::size_t>(2 * n + 4));
  }
}

/// Overlay plumbing around the oracle: a circle-of-sites geometry small
/// enough for unit tests, with the runtime caps lowered so the fallback and
/// the Auto switchover both trigger.
class HubLabelOverlayTest : public ::testing::Test {
 protected:
  /// `n` sites on a circle of radius 4 around a square obstacle whose
  /// corners nearly touch the circle: sparse visibility windows, connected
  /// ring of sites.
  static OverlayGraph makeCircleOverlay(int n, TableMode table) {
    std::vector<geom::Vec2> pts;
    pts.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      const double a = 2.0 * M_PI * i / n;
      pts.push_back({4.0 * std::cos(a), 4.0 * std::sin(a)});
    }
    graph::GeometricGraph ldel(pts);
    std::vector<graph::NodeId> ring(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) ring[static_cast<std::size_t>(i)] = i;
    const double r = 4.0 * 0.9995;  // corner clearance 0.2% of the radius
    std::vector<geom::Polygon> obstacles = {
        geom::Polygon({{r, 0}, {0, r}, {-r, 0}, {0, -r}})};
    return OverlayGraph(ldel, {ring}, std::move(obstacles), EdgeMode::Visibility, table);
  }
};

TEST_F(HubLabelOverlayTest, DenseOverCapFallsBackLoudlyWithCounter) {
  const auto prev = OverlayGraph::setTableLimitsForTest(48, 0);
  const bool obsWas = obs::enabled();
  obs::setEnabled(true);
  auto& fallbacks = obs::Registry::global().counter("overlay.table.fallbacks");
  const auto before = fallbacks.value();

  {
    const OverlayGraph over = makeCircleOverlay(96, TableMode::Dense);
    EXPECT_FALSE(over.servesIncrementally());
    EXPECT_FALSE(over.usesHubLabels());
    EXPECT_EQ(fallbacks.value(), before + 1);
    // The rebuild path still answers correctly.
    const auto route = over.waypointsWithDistance({-5.0, 0.0}, {5.0, 0.0});
    EXPECT_TRUE(route.reachable);
  }
  {
    // The same size under HubLabels keeps the serving engine.
    const OverlayGraph over = makeCircleOverlay(96, TableMode::HubLabels);
    EXPECT_TRUE(over.servesIncrementally());
    EXPECT_TRUE(over.usesHubLabels());
    EXPECT_EQ(fallbacks.value(), before + 1);
  }

  obs::setEnabled(obsWas);
  OverlayGraph::setTableLimitsForTest(prev.first, prev.second);
}

TEST_F(HubLabelOverlayTest, AutoSwitchesToLabelsAboveThreshold) {
  const auto prev = OverlayGraph::setTableLimitsForTest(0, 64);
  {
    const OverlayGraph small = makeCircleOverlay(48, TableMode::Auto);
    EXPECT_TRUE(small.servesIncrementally());
    EXPECT_FALSE(small.usesHubLabels());
    const OverlayGraph big = makeCircleOverlay(96, TableMode::Auto);
    EXPECT_TRUE(big.servesIncrementally());
    EXPECT_TRUE(big.usesHubLabels());
    EXPECT_EQ(big.tableMode(), TableMode::Auto);
    EXPECT_GT(big.hubLabels().numEntries(), 96u);
  }
  OverlayGraph::setTableLimitsForTest(prev.first, prev.second);
}

TEST(HubLabelsApi, TableModeNamesRoundTrip) {
  for (const TableMode m : {TableMode::Dense, TableMode::HubLabels, TableMode::Auto}) {
    const auto parsed = parseTableMode(tableModeName(m));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, m);
  }
  EXPECT_FALSE(parseTableMode("hash-table").has_value());
}

}  // namespace
}  // namespace hybrid::routing
