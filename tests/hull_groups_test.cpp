#include <gtest/gtest.h>

#include <random>

#include "abstraction/hull_groups.hpp"
#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "testkit/generators.hpp"
#include "testkit/rng.hpp"

namespace hybrid {
namespace {

TEST(HullGroups, PolygonIntersectionPredicate) {
  using abstraction::convexPolygonsIntersect;
  const geom::Polygon a({{0, 0}, {2, 0}, {2, 2}, {0, 2}});
  const geom::Polygon b({{1, 1}, {3, 1}, {3, 3}, {1, 3}});   // overlaps a
  const geom::Polygon c({{5, 5}, {6, 5}, {6, 6}, {5, 6}});   // disjoint
  const geom::Polygon d({{0.5, 0.5}, {1.5, 0.5}, {1.0, 1.5}});  // inside a
  EXPECT_TRUE(convexPolygonsIntersect(a, b));
  EXPECT_FALSE(convexPolygonsIntersect(a, c));
  EXPECT_TRUE(convexPolygonsIntersect(a, d));
  EXPECT_TRUE(convexPolygonsIntersect(d, a));  // containment, either order
}

// A U-shape whose mouth swallows a small separate block: the two holes are
// disjoint, but the block's hull lies inside the U's hull.
scenario::Scenario interlockedScenario(unsigned seed = 51) {
  scenario::ScenarioParams p;
  p.width = p.height = 24.0;
  p.seed = seed;
  p.obstacles.push_back(scenario::uShapeObstacle({11.0, 11.0}, 10.0, 9.0, 1.6));
  p.obstacles.push_back(scenario::rectangleObstacle({9.5, 10.0}, {12.5, 12.5}));
  return scenario::makeScenario(p);
}

TEST(HullGroups, DetectsIntersectionAndMerges) {
  const auto sc = interlockedScenario();
  core::HybridNetwork net(sc.points);
  ASSERT_FALSE(net.convexHullsDisjoint());

  const auto groups =
      abstraction::mergeIntersectingHulls(net.ldel(), net.abstractions());
  ASSERT_FALSE(groups.empty());
  EXPECT_LT(groups.size(), net.abstractions().size());
  // Some group contains at least two member holes.
  std::size_t largest = 0;
  const abstraction::HullGroup* merged = nullptr;
  for (const auto& g : groups) {
    if (g.members.size() > largest) {
      largest = g.members.size();
      merged = &g;
    }
  }
  ASSERT_GE(largest, 2u);
  ASSERT_NE(merged, nullptr);
  EXPECT_TRUE(merged->hullPolygon.isConvex());
  // The merged hull contains every member hull.
  for (int m : merged->members) {
    for (const geom::Vec2 v :
         net.abstractions()[static_cast<std::size_t>(m)].hullPolygon.vertices()) {
      EXPECT_TRUE(merged->hullPolygon.contains(v));
    }
  }
}

TEST(HullGroups, GroupsPartitionTheAbstractions) {
  const auto sc = interlockedScenario();
  core::HybridNetwork net(sc.points);
  const auto groups =
      abstraction::mergeIntersectingHulls(net.ldel(), net.abstractions());
  std::vector<char> seen(net.abstractions().size(), 0);
  for (const auto& g : groups) {
    for (int m : g.members) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(m)]);
      seen[static_cast<std::size_t>(m)] = 1;
    }
  }
  for (char c : seen) EXPECT_TRUE(c);
}

TEST(HullGroups, MergedRouterDeliversOnInterlockedScenario) {
  const auto sc = interlockedScenario();
  core::HybridNetwork net(sc.points);
  auto merged = net.makeRouter({routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay,
                                true, /*mergeIntersectingHulls=*/true});
  EXPECT_EQ(merged->name(), "hybrid-hull-delaunay+merged");

  auto rng = testkit::loggedRng("hull-groups-merged-router", 4);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int mergedFallbacks = 0;
  for (int it = 0; it < 80; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = merged->route(s, t);
    ASSERT_TRUE(r.delivered) << s << " -> " << t;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(r.path[i], r.path[i + 1]));
    }
    EXPECT_LT(net.stretch(r, s, t), 12.0);
    mergedFallbacks += r.fallbacks;
  }
  // The extension should not devolve into shortest-path fallbacks.
  EXPECT_LT(mergedFallbacks, 40);
}


TEST(HullGroups, SeparatedHolesLandInDifferentGroups) {
  scenario::ScenarioParams p;
  p.width = p.height = 22.0;
  p.seed = 53;
  p.obstacles.push_back(scenario::regularPolygonObstacle({6.0, 6.0}, 2.0, 6));
  p.obstacles.push_back(scenario::regularPolygonObstacle({16.0, 16.0}, 2.0, 7));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  const auto groups =
      abstraction::mergeIntersectingHulls(net.ldel(), net.abstractions());
  // The two far-apart building holes are in different groups.
  int groupOfA = -1;
  int groupOfB = -1;
  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    for (int m : groups[gi].members) {
      const auto& hull = net.abstractions()[static_cast<std::size_t>(m)].hullPolygon;
      if (hull.size() < 3) continue;
      if (hull.contains({6.0, 6.0})) groupOfA = static_cast<int>(gi);
      if (hull.contains({16.0, 16.0})) groupOfB = static_cast<int>(gi);
    }
  }
  ASSERT_GE(groupOfA, 0);
  ASSERT_GE(groupOfB, 0);
  EXPECT_NE(groupOfA, groupOfB);
  // Every multi-member group has an intersection witness (touching hulls
  // count: the predicate is non-strict by design).
  for (const auto& g : groups) {
    if (g.members.size() < 2) continue;
    bool witness = false;
    for (std::size_t i = 0; i < g.members.size() && !witness; ++i) {
      for (std::size_t j = i + 1; j < g.members.size() && !witness; ++j) {
        witness = abstraction::convexPolygonsIntersect(
            net.abstractions()[static_cast<std::size_t>(g.members[i])].hullPolygon,
            net.abstractions()[static_cast<std::size_t>(g.members[j])].hullPolygon);
      }
    }
    EXPECT_TRUE(witness);
  }
}

// The paper's §4 guarantees are conditional on pairwise-disjoint convex
// hulls; intersecting hulls are explicitly unsupported (named as future
// work in §7). The contract of this implementation for that case:
//  1. detection — convexHullsDisjoint() reports it, and its verdict agrees
//     with the pairwise convexPolygonsIntersect predicate up to the
//     documented boundary-contact difference (strict vs non-strict);
//  2. fallback — the *unmerged* default router still delivers every route
//     on valid LDel edges, with the protocol gaps surfaced through
//     RouteResult::fallbacks rather than hidden.
TEST(HullGroups, IntersectingHullsAreDetected) {
  const auto sc = interlockedScenario();
  core::HybridNetwork net(sc.points);
  ASSERT_FALSE(net.convexHullsDisjoint());

  // Not disjoint implies some pair intersects under the loose predicate
  // (the converse can fail only on exact boundary contact).
  bool witness = false;
  const auto& abs = net.abstractions();
  for (std::size_t i = 0; i < abs.size() && !witness; ++i) {
    if (abs[i].hullPolygon.size() < 3) continue;
    for (std::size_t j = i + 1; j < abs.size() && !witness; ++j) {
      if (abs[j].hullPolygon.size() < 3) continue;
      witness = abstraction::convexPolygonsIntersect(abs[i].hullPolygon,
                                                     abs[j].hullPolygon);
    }
  }
  EXPECT_TRUE(witness);
}

TEST(HullGroups, UnmergedRouterStillDeliversOnIntersectingHulls) {
  const auto sc = interlockedScenario();
  core::HybridNetwork net(sc.points);
  ASSERT_FALSE(net.convexHullsDisjoint());

  // Plain §4 router, merging off: outside its supported regime, but the
  // delivery guarantee must hold — that is the documented fallback.
  auto rng = testkit::loggedRng("hull-groups-unmerged-fallback", 4);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int fallbacks = 0;
  for (int it = 0; it < 60; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = net.route(s, t);
    ASSERT_TRUE(r.delivered) << s << " -> " << t;
    ASSERT_FALSE(r.path.empty());
    EXPECT_EQ(r.path.front(), s);
    EXPECT_EQ(r.path.back(), t);
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(r.path[i], r.path[i + 1]));
    }
    fallbacks += r.fallbacks;
  }
  // No competitive-ratio assertion here on purpose: the paper makes no
  // stretch promise when hulls intersect. Fallback counts are informative
  // only; what is load-bearing is delivery on valid edges.
  SUCCEED() << "fallbacks across 60 routes: " << fallbacks;
}

TEST(HullGroups, TestkitIntersectGeneratorHitsTheUnsupportedCase) {
  // The fuzzing generator dedicated to this case must actually produce
  // intersecting hulls (for at least some seeds), so the fuzzer keeps
  // exercising the fallback path.
  const auto* gen = testkit::findGenerator("hull_intersect");
  ASSERT_NE(gen, nullptr);
  int intersecting = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto s = gen->make(seed);
    core::HybridNetwork net(s.points, s.radius);
    if (!net.convexHullsDisjoint()) ++intersecting;
  }
  EXPECT_GE(intersecting, 1);
}

}  // namespace
}  // namespace hybrid
