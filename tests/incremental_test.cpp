#include <gtest/gtest.h>

#include "protocols/incremental.hpp"
#include "scenario/churn.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "serve/route_service.hpp"

namespace hybrid {
namespace {

core::HybridNetwork makeNet(unsigned seed) {
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = seed;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8.0, 8.0}, 2.5, 6));
  return core::HybridNetwork(scenario::makeScenario(p).points);
}

TEST(Incremental, NoPreviousStateRecomputesEverything) {
  auto net = makeNet(61);
  sim::Simulator s(net.udg());
  protocols::IncrementalReport rep;
  const auto results = protocols::runIncrementalUpdate(net, s, {}, &rep);
  EXPECT_EQ(rep.changedRings, rep.totalRings);
  EXPECT_GT(rep.rounds, 0);
  // Every ring got a result, and hulls match the oracle.
  for (std::size_t hi = 0; hi < net.holes().holes.size(); ++hi) {
    auto hull = results[hi].hull;
    auto oracle = net.abstractions()[hi].hullNodes;
    std::sort(hull.begin(), hull.end());
    std::sort(oracle.begin(), oracle.end());
    EXPECT_EQ(hull, oracle) << "hole " << hi;
  }
}

TEST(Incremental, UnchangedNetworkCostsNothing) {
  auto net = makeNet(62);
  sim::Simulator s(net.udg());
  const auto prev = protocols::boundaryRings(net);
  protocols::IncrementalReport rep;
  protocols::runIncrementalUpdate(net, s, prev, &rep);
  EXPECT_EQ(rep.changedRings, 0);
  EXPECT_EQ(rep.rounds, 0);
  EXPECT_EQ(rep.messages, 0);
  EXPECT_GT(rep.fullRounds, 0);
}

TEST(Incremental, ToleranceAbsorbsSmallMembershipChanges) {
  auto net = makeNet(63);
  // Perturb the previous state: drop one node from each remembered ring.
  auto prev = protocols::boundaryRings(net);
  for (auto& ring : prev) {
    if (ring.size() > 8) ring.pop_back();
  }
  sim::Simulator strict(net.udg());
  protocols::IncrementalReport strictRep;
  protocols::runIncrementalUpdate(net, strict, prev, &strictRep, 1, 0.0);

  sim::Simulator tolerant(net.udg());
  protocols::IncrementalReport tolRep;
  protocols::runIncrementalUpdate(net, tolerant, prev, &tolRep, 1, 0.2);

  EXPECT_GT(strictRep.changedRings, tolRep.changedRings);
  // Small rings (<= 8 nodes, unperturbed) are unchanged in both.
  EXPECT_LE(tolRep.messages, strictRep.messages);
}


TEST(Incremental, FullToleranceNeverRecomputes) {
  auto net = makeNet(64);
  // Remembered rings are heavily perturbed, but tolerance 1.0 accepts any
  // nonempty overlap with a previous ring.
  auto prev = protocols::boundaryRings(net);
  for (auto& ring : prev) {
    while (ring.size() > 4) ring.pop_back();
  }
  sim::Simulator s(net.udg());
  protocols::IncrementalReport rep;
  protocols::runIncrementalUpdate(net, s, prev, &rep, 1, 1.0);
  EXPECT_EQ(rep.changedRings, 0);
  EXPECT_EQ(rep.messages, 0);
}

TEST(Incremental, RemoveReAddRoundTripMatchesFreshBuild) {
  scenario::ScenarioParams p;
  p.width = p.height = 10.0;
  p.seed = 65;
  p.obstacles.push_back(scenario::regularPolygonObstacle({5.0, 5.0}, 2.0, 6));
  const auto sc = scenario::makeScenario(p);

  serve::RouteService service(sc);
  const int victim = static_cast<int>(sc.points.size()) / 2;
  const geom::Vec2 pos = sc.points[static_cast<std::size_t>(victim)];

  scenario::Update leave;
  leave.kind = scenario::UpdateKind::Leave;
  leave.node = victim;
  service.enqueue(leave);
  const auto leaveStats = service.applyUpdates();
  ASSERT_EQ(leaveStats.applied, 1);

  scenario::Update join;
  join.kind = scenario::UpdateKind::Join;
  join.pos = pos;
  service.enqueue(join);
  const auto joinStats = service.applyUpdates();
  ASSERT_EQ(joinStats.applied, 1);

  // The round trip restores the node set (the re-added node lands at the
  // back of the point vector, so ids differ but geometry is identical)...
  auto got = service.snapshot()->scenario.points;
  auto want = sc.points;
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got, want);

  // ...and the served epoch is byte-identical to a from-scratch build on
  // the service's final point order.
  const auto snap = service.snapshot();
  const core::HybridNetwork fresh(snap->scenario.points, service.options().ldel,
                                  service.options().router, nullptr);
  const int n = static_cast<int>(snap->scenario.points.size());
  for (int i = 0; i + 1 < n && i < 30; i += 3) {
    const std::vector<routing::RoutePair> query{{i, n - 1 - i}};
    const auto a = service.routeBatch(query, 1).front();
    const auto b = fresh.route(i, n - 1 - i);
    EXPECT_EQ(a.path, b.path) << "pair " << i;
    EXPECT_EQ(a.delivered, b.delivered) << "pair " << i;
    EXPECT_EQ(a.fallbacks, b.fallbacks) << "pair " << i;
    EXPECT_EQ(a.protocolCase, b.protocolCase) << "pair " << i;
  }
}

}  // namespace
}  // namespace hybrid
