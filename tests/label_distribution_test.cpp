#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <random>
#include <vector>

#include "delaunay/udg.hpp"
#include "graph/csr.hpp"
#include "protocols/label_distribution.hpp"
#include "protocols/overlay_tree.hpp"
#include "protocols/reliable.hpp"
#include "routing/hub_labels.hpp"
#include "routing/node_labels.hpp"
#include "routing/stateless_router.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace hybrid {
namespace {

/// A circle of k nodes with unit-disk radius just above the chord length:
/// the UDG is exactly the ring (connected, diameter k/2).
graph::GeometricGraph circleRing(int k, double radiusScale = 1.05) {
  std::vector<geom::Vec2> pts;
  const double r = 10.0;
  for (int i = 0; i < k; ++i) {
    const double a = 2.0 * std::numbers::pi * i / k;
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const double chord = 2.0 * r * std::sin(std::numbers::pi / k);
  return delaunay::buildUnitDiskGraph(pts, chord * radiusScale);
}

routing::NodeLabels buildLabels(const graph::GeometricGraph& g) {
  routing::HubLabelOracle oracle;
  oracle.build(graph::buildCsr(g), 2);
  routing::NodeLabels labels;
  labels.build(oracle);
  return labels;
}

TEST(LabelDistribution, FaultFreeRunShipsEveryLabelByteIdentically) {
  const auto g = circleRing(40);
  const auto labels = buildLabels(g);
  sim::Simulator s(g);
  const auto tree = protocols::buildOverlayTree(s, 5);
  ASSERT_TRUE(tree.isSingleTree());

  std::vector<std::vector<routing::NodeLabels::Entry>> received;
  const auto rep = protocols::distributeNodeLabels(s, tree, labels, &received);
  EXPECT_TRUE(rep.complete);
  EXPECT_GT(rep.rounds, 0);
  ASSERT_EQ(received.size(), g.numNodes());

  const auto shipped = routing::NodeLabels::fromEntries(received);
  EXPECT_TRUE(shipped == labels);

  // Budget: one convergecast message per non-root node up, one bundle per
  // node crossing <= height tree links down — O(n log n) total, and each
  // bundle carries exactly one node's O(polylog) label.
  const auto n = static_cast<long>(g.numNodes());
  EXPECT_LE(rep.messages, n + n * (tree.computedHeight() + 1));
  EXPECT_LE(rep.maxBundleWords,
            static_cast<long>(labels.maxLabelSize()) * 4 + 2);
}

TEST(LabelDistribution, LossyRunWithArqMatchesFaultFree) {
  const auto g = circleRing(32);
  const auto labels = buildLabels(g);

  // The tree shape is decided once (fault-free preprocessing); the
  // distribution itself then runs over a lossy long-range channel.
  sim::Simulator clean(g);
  const auto tree = protocols::buildOverlayTree(clean, 9);
  ASSERT_TRUE(tree.isSingleTree());

  std::vector<std::vector<routing::NodeLabels::Entry>> faultFree;
  const auto repClean = protocols::distributeNodeLabels(clean, tree, labels, &faultFree);
  ASSERT_TRUE(repClean.complete);

  sim::FaultConfig cfg;
  cfg.seed = 4242;
  cfg.longRangeDrop = 0.25;
  sim::Simulator lossy(g, sim::FaultPlan(cfg));
  const protocols::RetryPolicy retry;
  std::vector<std::vector<routing::NodeLabels::Entry>> viaArq;
  const auto repLossy = protocols::distributeNodeLabels(lossy, tree, labels, &viaArq, &retry);
  EXPECT_TRUE(repLossy.complete);
  EXPECT_GT(lossy.totalDropped(), 0L);  // faults actually fired

  // Determinism under loss: the ARQ transport hides every drop, so the
  // shipped labels are byte-identical to the fault-free run's — and both
  // equal the locally built slab.
  EXPECT_EQ(viaArq, faultFree);
  const auto shipped = routing::NodeLabels::fromEntries(viaArq);
  EXPECT_TRUE(shipped == labels);

  // A router serving from the shipped labels answers exactly like one
  // serving from the local build.
  const routing::StatelessRouter local{routing::NodeLabels(labels)};
  const routing::StatelessRouter remote{routing::NodeLabels(shipped)};
  std::mt19937 rng(3);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(g.numNodes()) - 1);
  for (int q = 0; q < 40; ++q) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto a = local.route(s, t);
    const auto b = remote.route(s, t);
    EXPECT_EQ(a.delivered, b.delivered) << s << "->" << t;
    EXPECT_EQ(a.path, b.path) << s << "->" << t;
  }
}

TEST(LabelDistribution, RepeatedRunsAreDeterministic) {
  const auto g = circleRing(24);
  const auto labels = buildLabels(g);
  std::vector<std::vector<routing::NodeLabels::Entry>> r1;
  std::vector<std::vector<routing::NodeLabels::Entry>> r2;
  long msgs1 = 0;
  long msgs2 = 0;
  {
    sim::Simulator s(g);
    const auto tree = protocols::buildOverlayTree(s, 7);
    msgs1 = protocols::distributeNodeLabels(s, tree, labels, &r1).messages;
  }
  {
    sim::Simulator s(g);
    const auto tree = protocols::buildOverlayTree(s, 7);
    msgs2 = protocols::distributeNodeLabels(s, tree, labels, &r2).messages;
  }
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(msgs1, msgs2);
}

}  // namespace
}  // namespace hybrid
