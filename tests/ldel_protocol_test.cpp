#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "protocols/ldel_protocol.hpp"
#include "protocols/preprocessing.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

scenario::Scenario holeScenario(unsigned seed) {
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = seed;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8, 8}, 2.5, 6));
  return scenario::makeScenario(p);
}

class LdelProtocolVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(LdelProtocolVsOracle, GraphMatchesCentralizedConstruction) {
  const auto sc = holeScenario(300 + static_cast<unsigned>(GetParam()));
  core::HybridNetwork net(sc.points);
  ASSERT_EQ(net.ldelResult().removedCrossings, 0);

  sim::Simulator s(net.udg());
  const auto dist = protocols::runLdelConstruction(s);

  // The O(1)-round protocol: hello, neighbor lists, proposals.
  EXPECT_EQ(dist.rounds, 3);
  auto distEdges = dist.graph.edges();
  auto oracleEdges = net.ldel().edges();
  std::sort(distEdges.begin(), distEdges.end());
  std::sort(oracleEdges.begin(), oracleEdges.end());
  EXPECT_EQ(distEdges, oracleEdges);
}

TEST_P(LdelProtocolVsOracle, LocalBoundaryDetectionMatchesFaceWalks) {
  const auto sc = holeScenario(320 + static_cast<unsigned>(GetParam()));
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  const auto dist = protocols::runLdelConstruction(s);

  // Oracle boundary nodes = hole ring members + the outer face walk.
  std::set<graph::NodeId> oracle;
  for (const auto& h : net.holes().holes) oracle.insert(h.ring.begin(), h.ring.end());
  oracle.insert(net.holes().outerBoundary.begin(), net.holes().outerBoundary.end());

  for (std::size_t v = 0; v < dist.isBoundary.size(); ++v) {
    EXPECT_EQ(dist.isBoundary[v] != 0, oracle.contains(static_cast<graph::NodeId>(v)))
        << "node " << v;
  }
}

TEST_P(LdelProtocolVsOracle, GapNeighborsMatchRingAdjacency) {
  const auto sc = holeScenario(340 + static_cast<unsigned>(GetParam()));
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  const auto dist = protocols::runLdelConstruction(s);

  for (const auto& h : net.holes().holes) {
    if (h.outer) continue;  // outer holes use the synthetic hull edge
    const std::size_t k = h.ring.size();
    std::set<graph::NodeId> distinct(h.ring.begin(), h.ring.end());
    if (distinct.size() != k) continue;
    for (std::size_t i = 0; i < k; ++i) {
      const int pred = h.ring[(i + k - 1) % k];
      const int v = h.ring[i];
      const int succ = h.ring[(i + 1) % k];
      // One of v's locally detected gaps must be exactly {pred, succ}.
      bool found = false;
      for (const auto& gap : dist.gaps[static_cast<std::size_t>(v)]) {
        if ((gap[0] == pred && gap[1] == succ) || (gap[0] == succ && gap[1] == pred)) {
          found = true;
        }
      }
      EXPECT_TRUE(found) << "node " << v << " misses ring gap (" << pred << "," << succ
                         << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LdelProtocolVsOracle, ::testing::Range(0, 4));

TEST_P(LdelProtocolVsOracle, AssembledRingsMatchOracleRings) {
  const auto sc = holeScenario(360 + static_cast<unsigned>(GetParam()));
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  const auto dist = protocols::runLdelConstruction(s);
  const auto rings = protocols::assembleRingsFromGaps(dist);

  // Canonicalize a ring to its sorted member set for matching.
  auto keyOf = [](std::vector<int> ring) {
    std::sort(ring.begin(), ring.end());
    ring.erase(std::unique(ring.begin(), ring.end()), ring.end());
    return ring;
  };
  std::map<std::vector<int>, std::vector<int>> byKey;
  for (const auto& r : rings) byKey[keyOf(r)] = r;

  // Every simple inner hole ring appears, with matching cyclic adjacency
  // and counter-clockwise orientation.
  for (const auto& h : net.holes().holes) {
    if (h.outer) continue;
    std::set<int> distinct(h.ring.begin(), h.ring.end());
    if (distinct.size() != h.ring.size()) continue;
    const auto it = byKey.find(keyOf(h.ring));
    ASSERT_NE(it, byKey.end()) << "missing a hole ring";
    const auto& got = it->second;
    ASSERT_EQ(got.size(), h.ring.size());
    // Same cyclic sequence: align at h.ring[0] and compare.
    const auto at = std::find(got.begin(), got.end(), h.ring[0]);
    ASSERT_NE(at, got.end());
    std::vector<int> rotated(at, got.end());
    rotated.insert(rotated.end(), got.begin(), at);
    EXPECT_EQ(rotated, h.ring);
  }
}


TEST(LdelProtocol, FullyDistributedPreprocessingMatchesOracleHulls) {
  const auto sc = holeScenario(400);
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  protocols::PreprocessingReport rep;
  std::vector<std::vector<int>> rings;
  const auto out = protocols::runDistributedPreprocessing(net, s, &rep, 3, &rings);
  EXPECT_GT(rep.ldelConstruction, 0);
  EXPECT_TRUE(rep.treeIsSingle);

  // Inner-hole hull nodes from the distributed run match the oracle.
  std::set<int> distHull;
  for (const auto& r : out.ringResults) {
    if (r.turningAngle > 0.0) distHull.insert(r.hull.begin(), r.hull.end());
  }
  std::set<int> oracleHull;
  for (const auto& a : net.abstractions()) {
    const auto& hole = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    if (hole.outer) continue;  // outer holes need the CH(V) refinement
    oracleHull.insert(a.hullNodes.begin(), a.hullNodes.end());
  }
  for (int v : oracleHull) {
    EXPECT_TRUE(distHull.contains(v)) << "oracle hull node " << v << " missing";
  }
  // Every distributed hull node knows the whole clique.
  for (int v : distHull) {
    EXPECT_FALSE(out.hullKnowledge[static_cast<std::size_t>(v)].empty());
  }
}


TEST(LdelProtocol, SecondRunDetectsOuterHoles) {
  // A scenario with boundary concavities: the oracle finds outer holes;
  // the distributed second hull run (§5.4) must find them too.
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = 410;
  p.jitter = 0.35;  // rougher boundary: more outer holes
  p.obstacles.push_back(scenario::regularPolygonObstacle({8, 8}, 2.5, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  int oracleOuter = 0;
  std::set<int> oracleOuterHull;
  for (const auto& a : net.abstractions()) {
    const auto& hole = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    if (!hole.outer) continue;
    ++oracleOuter;
    oracleOuterHull.insert(a.hullNodes.begin(), a.hullNodes.end());
  }
  if (oracleOuter == 0) GTEST_SKIP() << "no outer holes in this instance";

  sim::Simulator s(net.udg());
  protocols::PreprocessingReport rep;
  std::vector<std::vector<int>> rings;
  const auto out = protocols::runDistributedPreprocessing(net, s, &rep, 3, &rings);

  // Collect hull nodes of the second-run rings (they turn ccw like holes).
  std::set<int> distHull;
  for (const auto& r : out.ringResults) {
    if (r.turningAngle > 0.0) distHull.insert(r.hull.begin(), r.hull.end());
  }
  int covered = 0;
  for (int v : oracleOuterHull) covered += distHull.contains(v) ? 1 : 0;
  // The derivations differ in degenerate corners, but the bulk of the
  // oracle's outer-hole hull nodes must be rediscovered.
  EXPECT_GE(covered * 10, static_cast<int>(oracleOuterHull.size()) * 8)
      << covered << " of " << oracleOuterHull.size();
}

TEST(LdelProtocol, ConstantRoundsAndLinearishMessages) {
  for (const std::size_t n : {200u, 800u}) {
    const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(n, 99));
    const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
    sim::Simulator s(udg);
    const auto dist = protocols::runLdelConstruction(s);
    EXPECT_EQ(dist.rounds, 3);
    // Messages: 2 broadcasts per node plus triangle proposals: O(n) with a
    // degree-bounded constant.
    EXPECT_LT(dist.messages, static_cast<long>(udg.numNodes()) * 40);
  }
}

}  // namespace
}  // namespace hybrid
