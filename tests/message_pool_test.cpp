#include <gtest/gtest.h>

#include "alloc_counter.hpp"
#include "delaunay/udg.hpp"
#include "sim/message_pool.hpp"
#include "sim/simulator.hpp"
#include "util/small_vec.hpp"

// The counting global allocator lives in alloc_counter.cpp (only one
// ::operator new replacement is allowed per binary); under sanitizers the
// strict zero-allocation assertions are skipped.

namespace hybrid::sim {
namespace {

TEST(MessagePool, AcquireReturnsCleanSlots) {
  MessagePool pool;
  const auto h = pool.acquire();
  Message& m = pool.get(h);
  EXPECT_EQ(m.from, -1);
  EXPECT_EQ(m.to, -1);
  EXPECT_TRUE(m.ints.empty());
  EXPECT_TRUE(m.reals.empty());
  EXPECT_TRUE(m.ids.empty());
  EXPECT_EQ(pool.liveCount(), 1u);
  pool.release(h);
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(MessagePool, ReleaseRecyclesSlotsLifo) {
  MessagePool pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_NE(a, b);
  pool.release(b);
  pool.release(a);
  // LIFO: the most recently released slot (a) comes back first, and no new
  // slot is created.
  EXPECT_EQ(pool.acquire(), a);
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.slotCount(), 2u);
}

TEST(MessagePool, RecycledSlotKeepsPayloadCapacity) {
  MessagePool pool;
  const auto h = pool.acquire();
  {
    Message& m = pool.get(h);
    for (int i = 0; i < 100; ++i) m.ints.push_back(i);  // spill to heap
    ASSERT_GE(m.ints.capacity(), 100u);
  }
  pool.release(h);
  const auto h2 = pool.acquire();
  ASSERT_EQ(h2, h);
  Message& m = pool.get(h2);
  // The slot came back empty but with the heap buffer intact: refilling to
  // the previous size performs no SmallVec allocation.
  EXPECT_TRUE(m.ints.empty());
  EXPECT_GE(m.ints.capacity(), 100u);
  const long before = util::detail::smallVecHeapAllocs().load();
  for (int i = 0; i < 100; ++i) m.ints.push_back(i);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before);
  pool.release(h2);
}

TEST(MessagePool, LiveSlotsNeverAlias) {
  MessagePool pool;
  // Spans several slabs (256 slots each).
  std::vector<MessagePool::Handle> hs;
  for (int i = 0; i < 600; ++i) hs.push_back(pool.acquire());
  EXPECT_GE(pool.slabsAllocated(), 3l);
  for (std::size_t i = 0; i < hs.size(); ++i) {
    pool.get(hs[i]).from = static_cast<int>(i);
    pool.get(hs[i]).ints = {static_cast<std::int64_t>(i)};
  }
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(pool.get(hs[i]).from, static_cast<int>(i));
    ASSERT_EQ(pool.get(hs[i]).ints.size(), 1u);
    EXPECT_EQ(pool.get(hs[i]).ints[0], static_cast<std::int64_t>(i));
  }
  for (const auto h : hs) pool.release(h);
}

TEST(MessagePool, SlotAddressesAreStableAcrossGrowth) {
  MessagePool pool;
  const auto h = pool.acquire();
  const Message* addr = &pool.get(h);
  for (int i = 0; i < 2000; ++i) pool.acquire();  // force many new slabs
  EXPECT_EQ(&pool.get(h), addr);
}

// Every node gossips a fixed 3-word message to each UDG neighbor every
// round. Per-node state is a plain int, so the protocol itself performs no
// allocations after construction and is safe at any thread count.
class GossipProtocol : public Protocol {
 public:
  explicit GossipProtocol(int rounds) : rounds_(rounds) {}

  void onStart(Context& ctx) override { blast(ctx); }
  void onMessage(Context&, const Message&) override {}
  void onRoundEnd(Context& ctx) override {
    if (ctx.round() < rounds_) blast(ctx);
  }
  bool wantsMoreRounds() const override { return false; }

 private:
  void blast(Context& ctx) {
    for (int nb : ctx.udgNeighbors()) {
      Message m;
      m.type = 7;
      m.ints = {1, 2};
      m.reals = {3.5};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  int rounds_;
};

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      pts.push_back({static_cast<double>(x) * 0.9, static_cast<double>(y) * 0.9});
    }
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

TEST(MessagePool, SlabBoundaryExhaustionAndReuse) {
  // Slabs hold 256 messages. Acquiring 257 live slots must cross the slab
  // boundary: handle 256 starts a second slab, and addresses handed out
  // from the first slab stay stable across that growth.
  MessagePool pool;
  std::vector<MessagePool::Handle> handles;
  for (int i = 0; i < 256; ++i) handles.push_back(pool.acquire());
  EXPECT_EQ(pool.slabsAllocated(), 1);
  EXPECT_EQ(pool.liveCount(), 256u);
  const Message* firstSlot = &pool.get(handles[0]);

  const auto overflow = pool.acquire();
  EXPECT_EQ(pool.slabsAllocated(), 2);
  EXPECT_EQ(pool.liveCount(), 257u);
  EXPECT_NE(&pool.get(overflow), nullptr);
  // Growing the pool did not move earlier slots.
  EXPECT_EQ(&pool.get(handles[0]), firstSlot);

  // Releasing everything and re-acquiring the same number of slots must
  // reuse the freelist: no third slab, no new slot ids.
  pool.release(overflow);
  for (const auto h : handles) pool.release(h);
  EXPECT_EQ(pool.liveCount(), 0u);
  const std::size_t slots = pool.slotCount();
  for (int i = 0; i < 257; ++i) {
    const auto h = pool.acquire();
    Message& m = pool.get(h);
    EXPECT_TRUE(m.ints.empty());
    EXPECT_TRUE(m.ids.empty());
  }
  EXPECT_EQ(pool.slotCount(), slots);
  EXPECT_EQ(pool.slabsAllocated(), 2);
}

TEST(SmallVec, ExactlyAtInlineCapacityDoesNotSpill) {
  const long before = util::detail::smallVecHeapAllocs().load();
  util::SmallVec<int, 6> v;
  for (int i = 0; i < 6; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 6u);
  EXPECT_EQ(v.capacity(), 6u);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before);

  // Element N+1 is the first (and only) allocation.
  v.push_back(6);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before + 1);
  EXPECT_GT(v.capacity(), 6u);
  for (int i = 0; i < 7; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, AssignAndResizeAtTheBoundary) {
  const long before = util::detail::smallVecHeapAllocs().load();
  util::SmallVec<int, 4> v;
  const int four[] = {1, 2, 3, 4};
  v.assign(four, four + 4);  // exactly at capacity: stays inline
  EXPECT_EQ(v.capacity(), 4u);
  v.resize(4);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before);

  v.resize(5);  // one past: spills exactly once, value-initializing the tail
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before + 1);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[3], 4);
  EXPECT_EQ(v[4], 0);

  // clear() keeps the spilled capacity; refilling to the old size is free.
  const std::size_t cap = v.capacity();
  v.clear();
  EXPECT_EQ(v.capacity(), cap);
  for (int i = 0; i < 5; ++i) v.push_back(i);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before + 1);
}

TEST(SmallVec, MoveOfInlineSourceIntoSpilledDestinationKeepsStorage) {
  util::SmallVec<int, 4> dst;
  for (int i = 0; i < 10; ++i) dst.push_back(i);  // dst owns a heap buffer
  const std::size_t cap = dst.capacity();
  ASSERT_GE(cap, 10u);

  util::SmallVec<int, 4> src;
  src.push_back(41);
  src.push_back(42);

  const long before = util::detail::smallVecHeapAllocs().load();
  dst = std::move(src);  // inline-resident source: copied, storage kept
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before);
  EXPECT_EQ(dst.size(), 2u);
  EXPECT_EQ(dst.capacity(), cap);
  EXPECT_EQ(dst[0], 41);
  EXPECT_EQ(dst[1], 42);
  EXPECT_TRUE(src.empty());
}

TEST(MessagePool, SimulatorReachesAllocationFreeSteadyState) {
  const auto g = gridGraph(8);
  Simulator sim(g);

  // Warm-up run: grows the pool, payload capacities, scratch buffers and
  // the nodes' knowledge sets to their steady-state footprint.
  GossipProtocol warm(20);
  sim.run(warm);

  const long smallVecBefore = util::detail::smallVecHeapAllocs().load();
  const long heapBefore = testsupport::heapAllocCount();

  GossipProtocol measured(20);
  sim.run(measured);

  // No SmallVec spilled: pooled slots and stack messages reused capacity.
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), smallVecBefore);
  // The whole second run — 20 rounds, every node sending to every neighbor
  // every round — touched the heap zero times.
  if (testsupport::heapAllocCountingEnabled()) {
    EXPECT_EQ(testsupport::heapAllocCount(), heapBefore);
  }
}

}  // namespace
}  // namespace hybrid::sim
