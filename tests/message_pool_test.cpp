#include <gtest/gtest.h>

#include "alloc_counter.hpp"
#include "delaunay/udg.hpp"
#include "sim/message_pool.hpp"
#include "sim/simulator.hpp"
#include "util/small_vec.hpp"

// The counting global allocator lives in alloc_counter.cpp (only one
// ::operator new replacement is allowed per binary); under sanitizers the
// strict zero-allocation assertions are skipped.

namespace hybrid::sim {
namespace {

TEST(MessagePool, AcquireReturnsCleanSlots) {
  MessagePool pool;
  const auto h = pool.acquire();
  Message& m = pool.get(h);
  EXPECT_EQ(m.from, -1);
  EXPECT_EQ(m.to, -1);
  EXPECT_TRUE(m.ints.empty());
  EXPECT_TRUE(m.reals.empty());
  EXPECT_TRUE(m.ids.empty());
  EXPECT_EQ(pool.liveCount(), 1u);
  pool.release(h);
  EXPECT_EQ(pool.liveCount(), 0u);
}

TEST(MessagePool, ReleaseRecyclesSlotsLifo) {
  MessagePool pool;
  const auto a = pool.acquire();
  const auto b = pool.acquire();
  EXPECT_NE(a, b);
  pool.release(b);
  pool.release(a);
  // LIFO: the most recently released slot (a) comes back first, and no new
  // slot is created.
  EXPECT_EQ(pool.acquire(), a);
  EXPECT_EQ(pool.acquire(), b);
  EXPECT_EQ(pool.slotCount(), 2u);
}

TEST(MessagePool, RecycledSlotKeepsPayloadCapacity) {
  MessagePool pool;
  const auto h = pool.acquire();
  {
    Message& m = pool.get(h);
    for (int i = 0; i < 100; ++i) m.ints.push_back(i);  // spill to heap
    ASSERT_GE(m.ints.capacity(), 100u);
  }
  pool.release(h);
  const auto h2 = pool.acquire();
  ASSERT_EQ(h2, h);
  Message& m = pool.get(h2);
  // The slot came back empty but with the heap buffer intact: refilling to
  // the previous size performs no SmallVec allocation.
  EXPECT_TRUE(m.ints.empty());
  EXPECT_GE(m.ints.capacity(), 100u);
  const long before = util::detail::smallVecHeapAllocs().load();
  for (int i = 0; i < 100; ++i) m.ints.push_back(i);
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), before);
  pool.release(h2);
}

TEST(MessagePool, LiveSlotsNeverAlias) {
  MessagePool pool;
  // Spans several slabs (256 slots each).
  std::vector<MessagePool::Handle> hs;
  for (int i = 0; i < 600; ++i) hs.push_back(pool.acquire());
  EXPECT_GE(pool.slabsAllocated(), 3l);
  for (std::size_t i = 0; i < hs.size(); ++i) {
    pool.get(hs[i]).from = static_cast<int>(i);
    pool.get(hs[i]).ints = {static_cast<std::int64_t>(i)};
  }
  for (std::size_t i = 0; i < hs.size(); ++i) {
    EXPECT_EQ(pool.get(hs[i]).from, static_cast<int>(i));
    ASSERT_EQ(pool.get(hs[i]).ints.size(), 1u);
    EXPECT_EQ(pool.get(hs[i]).ints[0], static_cast<std::int64_t>(i));
  }
  for (const auto h : hs) pool.release(h);
}

TEST(MessagePool, SlotAddressesAreStableAcrossGrowth) {
  MessagePool pool;
  const auto h = pool.acquire();
  const Message* addr = &pool.get(h);
  for (int i = 0; i < 2000; ++i) pool.acquire();  // force many new slabs
  EXPECT_EQ(&pool.get(h), addr);
}

// Every node gossips a fixed 3-word message to each UDG neighbor every
// round. Per-node state is a plain int, so the protocol itself performs no
// allocations after construction and is safe at any thread count.
class GossipProtocol : public Protocol {
 public:
  explicit GossipProtocol(int rounds) : rounds_(rounds) {}

  void onStart(Context& ctx) override { blast(ctx); }
  void onMessage(Context&, const Message&) override {}
  void onRoundEnd(Context& ctx) override {
    if (ctx.round() < rounds_) blast(ctx);
  }
  bool wantsMoreRounds() const override { return false; }

 private:
  void blast(Context& ctx) {
    for (int nb : ctx.udgNeighbors()) {
      Message m;
      m.type = 7;
      m.ints = {1, 2};
      m.reals = {3.5};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  int rounds_;
};

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      pts.push_back({static_cast<double>(x) * 0.9, static_cast<double>(y) * 0.9});
    }
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

TEST(MessagePool, SimulatorReachesAllocationFreeSteadyState) {
  const auto g = gridGraph(8);
  Simulator sim(g);

  // Warm-up run: grows the pool, payload capacities, scratch buffers and
  // the nodes' knowledge sets to their steady-state footprint.
  GossipProtocol warm(20);
  sim.run(warm);

  const long smallVecBefore = util::detail::smallVecHeapAllocs().load();
  const long heapBefore = testsupport::heapAllocCount();

  GossipProtocol measured(20);
  sim.run(measured);

  // No SmallVec spilled: pooled slots and stack messages reused capacity.
  EXPECT_EQ(util::detail::smallVecHeapAllocs().load(), smallVecBefore);
  // The whole second run — 20 rounds, every node sending to every neighbor
  // every round — touched the heap zero times.
  if (testsupport::heapAllocCountingEnabled()) {
    EXPECT_EQ(testsupport::heapAllocCount(), heapBefore);
  }
}

}  // namespace
}  // namespace hybrid::sim
