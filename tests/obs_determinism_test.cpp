// Observability must never perturb behavior: simulator traces, fault
// schedules and routing outputs are byte-identical with metrics on or off,
// serial and threaded (the tentpole invariant of src/obs).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace hybrid {
namespace {

class ObsFlagGuard {
 public:
  ~ObsFlagGuard() {
    obs::setEnabled(false);
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
  }
};

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) pts.push_back({0.9 * x, 0.9 * y});
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

// Every node floods a token once; plenty of concurrent traffic for the
// fault layer to act on.
class FloodProtocol : public sim::Protocol {
 public:
  explicit FloodProtocol(std::size_t n) : has_(n, 0) {}

  void onStart(sim::Context& ctx) override {
    if (ctx.self() != 0) return;
    has_[0] = 1;
    forward(ctx);
  }
  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    if (m.type != 7 || has_[static_cast<std::size_t>(ctx.self())] != 0) return;
    has_[static_cast<std::size_t>(ctx.self())] = 1;
    forward(ctx);
  }

 private:
  void forward(sim::Context& ctx) {
    for (int nb : ctx.udgNeighbors()) {
      sim::Message m;
      m.type = 7;
      m.ints = {static_cast<std::int64_t>(ctx.self())};
      ctx.sendAdHoc(nb, std::move(m));
    }
  }
  std::vector<char> has_;
};

sim::FaultPlan noisyPlan() {
  sim::FaultConfig cfg;
  cfg.seed = 1234;
  cfg.adHocDrop = 0.08;
  cfg.adHocDuplicate = 0.05;
  cfg.adHocDelay = 0.05;
  cfg.crashes.push_back({3, 1, 3});
  return sim::FaultPlan(cfg);
}

std::string runFloodTrace(bool metricsOn, int threads) {
  obs::setEnabled(metricsOn && obs::kCompiledIn);
  const auto g = gridGraph(7);
  sim::Simulator s(g, noisyPlan());
  s.setThreads(threads);
  s.setAllowOversubscribe(true);  // keep the parallel path real on small boxes
  s.enableTrace();
  FloodProtocol proto(g.numNodes());
  s.run(proto);
  obs::setEnabled(false);
  return s.trace();
}

TEST(ObsDeterminism, SimTraceIdenticalWithMetricsOnAndOffSerial) {
  ObsFlagGuard guard;
  EXPECT_EQ(runFloodTrace(false, 1), runFloodTrace(true, 1));
}

TEST(ObsDeterminism, SimTraceIdenticalWithMetricsOnAndOffThreaded) {
  ObsFlagGuard guard;
  const std::string off = runFloodTrace(false, 4);
  const std::string on = runFloodTrace(true, 4);
  EXPECT_EQ(off, on);
  // And thread count never changes the trace either way.
  EXPECT_EQ(on, runFloodTrace(true, 1));
}

bool sameResult(const routing::RouteResult& a, const routing::RouteResult& b) {
  return a.path == b.path && a.delivered == b.delivered &&
         a.blockedHole == b.blockedHole && a.fallbacks == b.fallbacks &&
         a.bayExtremePoints == b.bayExtremePoints && a.protocolCase == b.protocolCase;
}

TEST(ObsDeterminism, RouteBatchIdenticalWithMetricsOnAndOff) {
  ObsFlagGuard guard;

  scenario::ScenarioParams p;
  p.width = p.height = 12.0;
  p.seed = 33;
  p.obstacles.push_back(scenario::uShapeObstacle({6.0, 5.0}, 4.0, 3.5, 0.8));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  const auto router = net.makeRouter(
      {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});

  std::vector<routing::RoutePair> pairs;
  const int n = static_cast<int>(net.ldel().numNodes());
  for (int i = 0; i < 60; ++i) pairs.push_back({(7 * i) % n, (13 * i + 5) % n});

  obs::setEnabled(false);
  const auto offSerial = router->routeBatch(pairs, 1);
  const auto offThreaded = router->routeBatch(pairs, 4);
  obs::setEnabled(obs::kCompiledIn);
  const auto onSerial = router->routeBatch(pairs, 1);
  const auto onThreaded = router->routeBatch(pairs, 4);
  obs::setEnabled(false);

  ASSERT_EQ(offSerial.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(sameResult(offSerial[i], onSerial[i])) << "pair " << i;
    EXPECT_TRUE(sameResult(offSerial[i], onThreaded[i])) << "pair " << i;
    EXPECT_TRUE(sameResult(offSerial[i], offThreaded[i])) << "pair " << i;
  }
}

}  // namespace
}  // namespace hybrid
