#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/span.hpp"

namespace hybrid::obs {
namespace {

/// Restores the runtime flag and clears all global obs state around each
/// test, so tests are order-independent.
class ObsStateGuard {
 public:
  ObsStateGuard() {
    Registry::global().reset();
    Tracer::global().reset();
  }
  ~ObsStateGuard() {
    setEnabled(false);
    Registry::global().reset();
    Tracer::global().reset();
  }
};

TEST(ObsMetrics, CounterAddValueReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsMetrics, GaugeSetMaxReset) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  EXPECT_EQ(g.value(), 3.5);
  g.max(2.0);  // smaller: no change
  EXPECT_EQ(g.value(), 3.5);
  g.max(7.25);
  EXPECT_EQ(g.value(), 7.25);
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
}

TEST(ObsMetrics, HistogramBucketBoundaries) {
  Histogram h({1.0, 2.0, 4.0});
  ASSERT_EQ(h.numBuckets(), 4u);  // 3 bounds + overflow

  // Bucket i counts bounds[i-1] < v <= bounds[i]: a value exactly on a
  // bound belongs to that bound's bucket, not the next one.
  h.record(0.5);  // bucket 0
  h.record(1.0);  // bucket 0 (== bounds[0])
  h.record(1.5);  // bucket 1
  h.record(2.0);  // bucket 1 (== bounds[1])
  h.record(4.0);  // bucket 2 (== bounds[2])
  h.record(5.0);  // overflow

  EXPECT_EQ(h.bucketCount(0), 2u);
  EXPECT_EQ(h.bucketCount(1), 2u);
  EXPECT_EQ(h.bucketCount(2), 1u);
  EXPECT_EQ(h.bucketCount(3), 1u);
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);

  const HistogramData d = h.data();
  EXPECT_EQ(d.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(d.counts, (std::vector<std::uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(d.count, 6u);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucketCount(0), 0u);
  EXPECT_EQ(h.sum(), 0.0);
}

TEST(ObsMetrics, RegistryCreateOnceWithStableAddresses) {
  ObsStateGuard guard;
  Registry& reg = Registry::global();
  Counter& a = reg.counter("obs_test.c");
  Counter& b = reg.counter("obs_test.c");
  EXPECT_EQ(&a, &b);

  Histogram& h1 = reg.histogram("obs_test.h", {1.0, 2.0});
  // Bounds are only consulted at creation; a second registration with
  // different bounds returns the original histogram unchanged.
  Histogram& h2 = reg.histogram("obs_test.h", {10.0, 20.0, 30.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(ObsMetrics, RegistryResetZeroesButKeepsRegistrations) {
  ObsStateGuard guard;
  Registry& reg = Registry::global();
  reg.counter("obs_reset_test.c").add(5);
  reg.gauge("obs_reset_test.g").set(2.5);
  reg.histogram("obs_reset_test.h", {1.0}).record(0.5);

  reg.reset();

  EXPECT_EQ(reg.counter("obs_reset_test.c").value(), 0u);
  EXPECT_EQ(reg.gauge("obs_reset_test.g").value(), 0.0);
  EXPECT_EQ(reg.histogram("obs_reset_test.h", {}).count(), 0u);
  // Names and bounds survive the reset (registrations live for the process
  // lifetime -- cached references must stay valid).
  bool found = false;
  for (const auto& [name, v] : reg.counterValues()) {
    if (name == "obs_reset_test.c") {
      found = true;
      EXPECT_EQ(v, 0u);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(reg.histogram("obs_reset_test.h", {}).bounds(), (std::vector<double>{1.0}));
}

TEST(ObsMetrics, RuntimeFlagToggles) {
  ObsStateGuard guard;
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  setEnabled(true);
  EXPECT_TRUE(enabled());
  setEnabled(false);
  EXPECT_FALSE(enabled());
}

TEST(ObsSpan, TreeStructureIsDeterministic) {
  ObsStateGuard guard;
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  setEnabled(true);

  const auto visit = [] {
    ScopedSpan a("a");
    {
      ScopedSpan b("b");
    }
    {
      ScopedSpan b("b");
    }
    ScopedSpan c("c");
  };

  visit();
  auto spans = Tracer::global().spanValues();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].first, "a");
  EXPECT_EQ(spans[0].second.count, 1u);
  EXPECT_EQ(spans[1].first, "a/b");
  EXPECT_EQ(spans[1].second.count, 2u);
  EXPECT_EQ(spans[2].first, "a/c");
  EXPECT_EQ(spans[2].second.count, 1u);

  // Re-running the same code grows counts, never the structure.
  visit();
  spans = Tracer::global().spanValues();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[1].second.count, 4u);
}

TEST(ObsSpan, DisabledSpansRecordNothing) {
  ObsStateGuard guard;
  setEnabled(false);
  {
    ScopedSpan s("never");
  }
  EXPECT_TRUE(Tracer::global().spanValues().empty());
}

TEST(ObsSnapshot, JsonRoundTripIsLossless) {
  // A hand-built snapshot exercises every field, including values that
  // need all 17 significant digits.
  Snapshot snap;
  snap.counters = {{"a.events", 123}, {"b.big", 9007199254740993ull}};
  snap.gauges = {{"a.ratio", 2.7182818284590452}, {"a.tiny", 1e-9}, {"z.neg", -0.5}};
  HistogramData h;
  h.bounds = {1.0, 8.0, 64.0};
  h.counts = {1, 0, 1, 1};
  h.count = 3;
  h.sum = 0.5 + 8.0 + 1000.0;
  snap.histograms = {{"a.lat", h}};
  snap.spans = {{"phase", 1, 12345}, {"phase/step", 1, 6789}};

  const std::string json = toJson(snap);
  const auto parsed = fromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snap);
  // Serialization is canonical: parse + re-serialize is byte-identical.
  EXPECT_EQ(toJson(*parsed), json);
}

TEST(ObsSnapshot, CaptureRoundTripsThroughJson) {
  ObsStateGuard guard;
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  setEnabled(true);

  Registry& reg = Registry::global();
  reg.counter("obs_rt_test.events").add(123);
  reg.gauge("obs_rt_test.ratio").set(2.7182818284590452);
  reg.histogram("obs_rt_test.lat", {1.0, 8.0, 64.0}).record(8.0);
  {
    ScopedSpan outer("obs_rt_phase");
    ScopedSpan inner("step");
  }

  const Snapshot snap = capture();
  const auto parsed = fromJson(toJson(snap));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, snap);
}

TEST(ObsSnapshot, CsvHasOneRowPerMetricAndBucket) {
  ObsStateGuard guard;
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  setEnabled(true);

  Registry& reg = Registry::global();
  reg.counter("obs_test.events").add(7);
  reg.histogram("obs_test.lat", {1.0, 2.0}).record(1.5);

  const std::string csv = toCsv(capture());
  EXPECT_NE(csv.find("counter,obs_test.events,7"), std::string::npos);
  EXPECT_NE(csv.find("obs_test.lat[le="), std::string::npos);
}

TEST(ObsSnapshot, SaveLoadRoundTripsThroughAFile) {
  ObsStateGuard guard;
  if (!kCompiledIn) GTEST_SKIP() << "observability compiled out";
  setEnabled(true);

  Registry::global().counter("obs_test.events").add(9);
  const Snapshot snap = capture();

  const std::string path =
      (std::filesystem::temp_directory_path() / "obs_snapshot_test.json").string();
  ASSERT_TRUE(saveSnapshot(path, snap));
  const auto loaded = loadSnapshot(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, snap);
}

TEST(ObsSnapshot, FromJsonRejectsMalformedInput) {
  EXPECT_FALSE(fromJson("").has_value());
  EXPECT_FALSE(fromJson("not json").has_value());
  EXPECT_FALSE(fromJson("{\"counters\": {").has_value());
}

}  // namespace
}  // namespace hybrid::obs
