#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "routing/overlay_graph.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::routing {
namespace {

class OverlayFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::ScenarioParams p;
    p.width = p.height = 18.0;
    p.seed = 101;
    p.obstacles.push_back(scenario::rectangleObstacle({7.0, 7.0}, {11.0, 11.0}));
    sc_ = new scenario::Scenario(scenario::makeScenario(p));
    net_ = new core::HybridNetwork(sc_->points);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete sc_;
  }
  static scenario::Scenario* sc_;
  static core::HybridNetwork* net_;
};

scenario::Scenario* OverlayFixture::sc_ = nullptr;
core::HybridNetwork* OverlayFixture::net_ = nullptr;

TEST_F(OverlayFixture, WaypointsRouteAroundTheBlock) {
  const auto& overlay = net_->router().overlay();
  // Endpoints on opposite sides of the square hole: the straight segment
  // is blocked, so waypoints must be non-empty hull corners.
  const auto wp = overlay.waypoints({4.0, 9.0}, {14.0, 9.0});
  ASSERT_TRUE(wp.has_value());
  ASSERT_FALSE(wp->empty());
  for (graph::NodeId w : *wp) {
    const auto pos = net_->ldel().position(w);
    // All waypoints are abstraction (hull) sites near the hole.
    EXPECT_GT(pos.x, 4.0);
    EXPECT_LT(pos.x, 14.0);
  }
}

TEST_F(OverlayFixture, OverlayDistanceBounds) {
  const auto& overlay = net_->router().overlay();
  std::mt19937 rng(1);
  std::uniform_real_distribution<double> d(1.0, 17.0);
  const geom::VisibilityContext vis(net_->holes().holePolygons());
  for (int it = 0; it < 40; ++it) {
    const geom::Vec2 a{d(rng), d(rng)};
    const geom::Vec2 b{d(rng), d(rng)};
    bool bad = false;
    for (const auto& h : net_->holes().holes) {
      bad = bad || h.polygon.contains(a) || h.polygon.contains(b);
    }
    if (bad) continue;
    const double od = overlay.overlayDistance(a, b);
    // Never shorter than the straight line...
    EXPECT_GE(od, geom::dist(a, b) - 1e-9);
    // ...and when visible, within the Delaunay spanner factor (the
    // overlay Delaunay does not keep direct edges between arbitrary
    // temporary endpoints; Thm 2.8's 1.998 bounds the detour).
    if (vis.visible(a, b)) EXPECT_LE(od, 1.998 * geom::dist(a, b) + 1e-9);
  }
}

TEST_F(OverlayFixture, EndpointOnSiteIsReusedNotDuplicated) {
  const auto& overlay = net_->router().overlay();
  ASSERT_FALSE(overlay.sites().empty());
  const graph::NodeId site = overlay.sites()[0];
  const geom::Vec2 sp = net_->ldel().position(site);
  // Query from exactly a site position: must not confuse the Delaunay
  // re-triangulation (duplicate points) and must not return the site as a
  // waypoint of itself.
  const auto wp = overlay.waypoints(sp, {2.0, 2.0});
  ASSERT_TRUE(wp.has_value());
  for (graph::NodeId w : *wp) EXPECT_NE(w, site);
}

TEST_F(OverlayFixture, SameStartAndEnd) {
  const auto& overlay = net_->router().overlay();
  const auto route = overlay.waypointsWithDistance({5.0, 5.0}, {5.0, 5.0});
  ASSERT_TRUE(route.reachable);
  EXPECT_TRUE(route.waypoints.empty());
  EXPECT_DOUBLE_EQ(route.distance, 0.0);
}

TEST_F(OverlayFixture, VisibilityModeHasMoreEdgesThanDelaunay) {
  auto vis = net_->makeRouter({SiteMode::HullNodes, EdgeMode::Visibility, true});
  auto del = net_->makeRouter({SiteMode::HullNodes, EdgeMode::Delaunay, true});
  EXPECT_GT(vis->overlay().numPrecomputedEdges(), del->overlay().numPrecomputedEdges());
  EXPECT_EQ(vis->overlay().sites().size(), del->overlay().sites().size());
}

TEST_F(OverlayFixture, BoundarySitesAreASupersetOfHullSites) {
  auto hull = net_->makeRouter({SiteMode::HullNodes, EdgeMode::Delaunay, true});
  auto bnd = net_->makeRouter({SiteMode::AllHoleNodes, EdgeMode::Delaunay, true});
  auto lch = net_->makeRouter({SiteMode::LocallyConvexHull, EdgeMode::Delaunay, true});
  const auto& hs = hull->overlay().sites();
  const auto& bs = bnd->overlay().sites();
  const auto& ls = lch->overlay().sites();
  EXPECT_LE(hs.size(), ls.size());
  EXPECT_LE(ls.size(), bs.size());
  for (graph::NodeId v : hs) {
    EXPECT_NE(std::find(bs.begin(), bs.end(), v), bs.end());
  }
}

}  // namespace
}  // namespace hybrid::routing
