#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <random>
#include <vector>

#include "core/hybrid_network.hpp"
#include "delaunay/triangulation.hpp"
#include "graph/shortest_path.hpp"
#include "routing/overlay_graph.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "testkit/generators.hpp"
#include "testkit/oracles.hpp"
#include "testkit/rng.hpp"

namespace hybrid::routing {
namespace {

constexpr double kEps = 1e-9;

/// Faithful replica of the pre-engine serving path: rebuild the query
/// graph (sites + endpoints) from the overlay's public state and run one
/// Dijkstra over it. This is what OverlayGraph did per query before the
/// incremental engine; the parity suite pins the new engine against it.
struct LegacyAnswer {
  bool reachable = false;
  double distance = std::numeric_limits<double>::infinity();
  std::vector<graph::NodeId> waypoints;
};

LegacyAnswer legacyQuery(const OverlayGraph& overlay, geom::Vec2 from, geom::Vec2 to) {
  const auto& sitePos = overlay.sitePositions();
  const auto& siteAdj = overlay.siteAdjacency();
  const auto& vis = overlay.visibility();
  const int ns = static_cast<int>(sitePos.size());

  int fromSite = -1;
  int toSite = -1;
  for (int i = 0; i < ns; ++i) {
    if (sitePos[static_cast<std::size_t>(i)] == from) fromSite = i;
    if (sitePos[static_cast<std::size_t>(i)] == to) toSite = i;
  }

  std::vector<geom::Vec2> pts = sitePos;
  const int fromIdx = fromSite >= 0 ? fromSite : static_cast<int>(pts.size());
  if (fromSite < 0) pts.push_back(from);
  int toIdx = toSite >= 0 ? toSite : static_cast<int>(pts.size());
  if (toSite < 0 && !(from == to)) pts.push_back(to);
  if (toSite < 0 && from == to) toIdx = fromIdx;

  graph::GeometricGraph g(pts);
  if (overlay.edgeMode() == EdgeMode::Visibility || pts.size() < 3) {
    for (int i = 0; i < ns; ++i) {
      for (int j : siteAdj[static_cast<std::size_t>(i)]) {
        if (j > i) g.addEdge(i, j);
      }
    }
    for (const int endpoint : {fromIdx, toIdx}) {
      if (endpoint < ns) continue;
      for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
        if (i == endpoint) continue;
        if (vis.visible(pts[static_cast<std::size_t>(endpoint)],
                        pts[static_cast<std::size_t>(i)])) {
          g.addEdge(endpoint, i);
        }
      }
    }
  } else {
    const delaunay::DelaunayTriangulation dt(pts);
    for (const auto& [u, v] : dt.edges()) {
      if (vis.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
        g.addEdge(u, v);
      }
    }
    for (const auto& [u, v] : overlay.backboneEdges()) {
      if (overlay.backboneFiltered() &&
          !vis.visible(pts[static_cast<std::size_t>(u)], pts[static_cast<std::size_t>(v)])) {
        continue;
      }
      g.addEdge(u, v);
    }
  }

  LegacyAnswer ans;
  const auto tree = graph::dijkstra(g, fromIdx, toIdx);
  ans.distance = tree.dist[static_cast<std::size_t>(toIdx)];
  const auto path = tree.pathTo(toIdx);
  if (path.empty() && fromIdx != toIdx) return ans;
  ans.reachable = true;
  for (graph::NodeId v : path) {
    if (v == fromIdx || v == toIdx) continue;
    if (v < static_cast<int>(overlay.sites().size())) {
      ans.waypoints.push_back(overlay.sites()[static_cast<std::size_t>(v)]);
    }
  }
  return ans;
}

/// Euclidean length of from -> waypoints -> to in the LDel embedding.
double polylineLength(const core::HybridNetwork& net, geom::Vec2 from, geom::Vec2 to,
                      const std::vector<graph::NodeId>& waypoints) {
  double len = 0.0;
  geom::Vec2 prev = from;
  for (graph::NodeId w : waypoints) {
    const geom::Vec2 p = net.ldel().position(w);
    len += geom::dist(prev, p);
    prev = p;
  }
  return len + geom::dist(prev, to);
}

struct ParityCase {
  unsigned seed;
  std::vector<geom::Polygon> obstacles;
};

std::vector<ParityCase> parityCases() {
  std::vector<ParityCase> cases;
  cases.push_back({11, {scenario::rectangleObstacle({5, 5}, {9, 9})}});
  cases.push_back({12, {scenario::regularPolygonObstacle({7, 7}, 2.5, 6)}});
  cases.push_back({13, {scenario::uShapeObstacle({7, 6}, 5.0, 4.0, 1.0)}});
  cases.push_back({14,
                   {scenario::rectangleObstacle({3, 3}, {6, 6}),
                    scenario::rectangleObstacle({8, 8}, {11, 11})}});
  cases.push_back({15,
                   {scenario::regularPolygonObstacle({4.5, 9}, 2.0, 5),
                    scenario::regularPolygonObstacle({10, 4.5}, 2.0, 7, 0.3)}});
  return cases;
}

/// 5 networks x 2 edge modes x 2 site modes x 12 query pairs = 240 seeded
/// scenarios: new engine vs the legacy rebuild-per-query replica.
TEST(OverlayParity, IncrementalEngineMatchesLegacyRebuild) {
  int checked = 0;
  for (const auto& pc : parityCases()) {
    scenario::ScenarioParams p;
    p.width = p.height = 14.0;
    p.seed = pc.seed;
    p.obstacles = pc.obstacles;
    const auto sc = scenario::makeScenario(p);
    const core::HybridNetwork net(sc.points);
    for (const EdgeMode em : {EdgeMode::Visibility, EdgeMode::Delaunay}) {
      for (const SiteMode sm : {SiteMode::HullNodes, SiteMode::AllHoleNodes}) {
        const auto router = net.makeRouter({sm, em, true});
        const OverlayGraph& overlay = router->overlay();
        ASSERT_FALSE(overlay.sites().empty()) << "seed=" << pc.seed;
        EXPECT_EQ(overlay.servesIncrementally(), em == EdgeMode::Visibility);

        std::mt19937 rng(pc.seed * 1000 + static_cast<unsigned>(em) * 10 +
                         static_cast<unsigned>(sm));
        std::uniform_real_distribution<double> d(0.5, 13.5);
        std::uniform_int_distribution<int> pickSite(
            0, static_cast<int>(overlay.sites().size()) - 1);
        for (int q = 0; q < 12; ++q) {
          geom::Vec2 a{d(rng), d(rng)};
          geom::Vec2 b{d(rng), d(rng)};
          // Mix in site-coincident endpoints: they exercise the cost-0
          // entry and the pure table-lookup branches.
          if (q % 4 == 1) a = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
          if (q % 4 == 2) b = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
          if (q % 12 == 3) b = a;

          const auto legacy = legacyQuery(overlay, a, b);
          const auto fresh = overlay.waypointsWithDistance(a, b);

          ++checked;
          ASSERT_EQ(fresh.reachable, legacy.reachable)
              << "seed=" << pc.seed << " q=" << q;
          if (!fresh.reachable) continue;
          EXPECT_NEAR(fresh.distance, legacy.distance, kEps)
              << "seed=" << pc.seed << " q=" << q;
          if (fresh.waypoints != legacy.waypoints) {
            // Equal-length shortest paths may tie-break differently (the
            // table groups FP additions differently than one sequential
            // Dijkstra); both must still realize the optimal distance.
            EXPECT_NEAR(polylineLength(net, a, b, fresh.waypoints), legacy.distance, 1e-6)
                << "seed=" << pc.seed << " q=" << q;
            EXPECT_NEAR(polylineLength(net, a, b, legacy.waypoints), legacy.distance, 1e-6)
                << "seed=" << pc.seed << " q=" << q;
          }
          // The combined solve agrees with the split entry points.
          const auto wp = overlay.waypoints(a, b);
          ASSERT_TRUE(wp.has_value());
          EXPECT_EQ(*wp, fresh.waypoints);
          EXPECT_NEAR(overlay.overlayDistance(a, b), fresh.distance, kEps);
        }
      }
    }
  }
  EXPECT_GE(checked, 200);
}

/// The hub-label backend against the dense table: every precomputed site
/// pair plus end-to-end queries, across the full parity-case matrix. Ties
/// may pick different hubs than the dense argmin scan, so waypoint lists
/// are compared by realized length.
TEST(OverlayParity, HubLabelBackendMatchesDense) {
  int checked = 0;
  for (const auto& pc : parityCases()) {
    scenario::ScenarioParams p;
    p.width = p.height = 14.0;
    p.seed = pc.seed;
    p.obstacles = pc.obstacles;
    const auto sc = scenario::makeScenario(p);
    const core::HybridNetwork net(sc.points);
    for (const SiteMode sm : {SiteMode::HullNodes, SiteMode::AllHoleNodes}) {
      HybridOptions denseOpts{sm, EdgeMode::Visibility, true};
      denseOpts.table = TableMode::Dense;
      HybridOptions labelOpts{sm, EdgeMode::Visibility, true};
      labelOpts.table = TableMode::HubLabels;
      const auto denseRouter = net.makeRouter(denseOpts);
      const auto labelRouter = net.makeRouter(labelOpts);
      const OverlayGraph& dense = denseRouter->overlay();
      const OverlayGraph& labels = labelRouter->overlay();
      ASSERT_FALSE(dense.usesHubLabels());
      ASSERT_TRUE(labels.usesHubLabels());
      ASSERT_TRUE(labels.servesIncrementally());

      const int h = static_cast<int>(dense.sites().size());
      ASSERT_GT(h, 0) << "seed=" << pc.seed;
      for (int i = 0; i < h; ++i) {
        for (int j = 0; j < h; ++j) {
          const double d = dense.sitePairDistance(i, j);
          const double l = labels.sitePairDistance(i, j);
          if (std::isinf(d)) {
            EXPECT_TRUE(std::isinf(l)) << "seed=" << pc.seed << " pair " << i << "," << j;
          } else {
            EXPECT_NEAR(l, d, 1e-9 * std::max(1.0, d))
                << "seed=" << pc.seed << " pair " << i << "," << j;
          }
        }
      }

      std::mt19937 rng(pc.seed * 7919 + static_cast<unsigned>(sm));
      std::uniform_real_distribution<double> d(0.5, 13.5);
      std::uniform_int_distribution<int> pickSite(0, h - 1);
      for (int q = 0; q < 12; ++q) {
        geom::Vec2 a{d(rng), d(rng)};
        geom::Vec2 b{d(rng), d(rng)};
        if (q % 4 == 1) a = dense.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
        if (q % 4 == 2) {
          a = dense.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
          b = dense.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
        }
        const auto ref = dense.waypointsWithDistance(a, b);
        const auto fresh = labels.waypointsWithDistance(a, b);
        ++checked;
        ASSERT_EQ(fresh.reachable, ref.reachable) << "seed=" << pc.seed << " q=" << q;
        if (!fresh.reachable) continue;
        EXPECT_NEAR(fresh.distance, ref.distance, 1e-6) << "seed=" << pc.seed << " q=" << q;
        if (fresh.waypoints != ref.waypoints) {
          EXPECT_NEAR(polylineLength(net, a, b, fresh.waypoints), ref.distance, 1e-6)
              << "seed=" << pc.seed << " q=" << q;
        }
      }
    }
  }
  EXPECT_GE(checked, 100);
}

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HYBRID_PARITY_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HYBRID_PARITY_SANITIZED 1
#endif

/// The old serving engine refused overlays above kMaxTableSites (4096) and
/// silently fell back to a per-query rebuild. With hub labels the ceiling
/// is gone: a ring of sites above the cap serves incrementally and matches
/// the rebuild ground truth. Release builds cross the historical 4096
/// boundary for real; Debug/sanitizer builds lower the caps instead so the
/// same code path runs within their runtime budget.
TEST(OverlayParity, SitesAboveDenseCapServeIncrementallyViaLabels) {
#if defined(NDEBUG) && !defined(HYBRID_PARITY_SANITIZED)
  const int n = 4288;  // genuinely above the historical dense ceiling
  const auto prevLimits = OverlayGraph::setTableLimitsForTest(0, 0);
#else
  const int n = 576;
  const auto prevLimits = OverlayGraph::setTableLimitsForTest(512, 256);
#endif
  // Sites on a circle around a square obstacle whose corners nearly touch
  // it: visibility windows stay local, so construction and queries remain
  // cheap at thousands of sites.
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    pts.push_back({4.0 * std::cos(a), 4.0 * std::sin(a)});
  }
  graph::GeometricGraph ldel(pts);
  std::vector<graph::NodeId> ring(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) ring[static_cast<std::size_t>(i)] = i;
  const double r = 4.0 * 0.9995;
  std::vector<geom::Polygon> obstacles = {geom::Polygon({{r, 0}, {0, r}, {-r, 0}, {0, -r}})};
  const OverlayGraph overlay(ldel, {ring}, obstacles, EdgeMode::Visibility, TableMode::Auto);

  ASSERT_EQ(overlay.sites().size(), static_cast<std::size_t>(n));
  EXPECT_TRUE(overlay.servesIncrementally());
  EXPECT_TRUE(overlay.usesHubLabels());
  // The label slab must undercut the dense footprint it replaced
  // (h^2 doubles + h^2 int32 predecessors).
  EXPECT_LT(overlay.hubLabels().labelBytes(),
            static_cast<std::size_t>(n) * static_cast<std::size_t>(n) * 12 / 4);

  std::mt19937 rng(29);
  std::uniform_real_distribution<double> d(-5.0, 5.0);
  std::uniform_int_distribution<int> pickSite(0, n - 1);
  for (int q = 0; q < 6; ++q) {
    geom::Vec2 a{d(rng), d(rng)};
    geom::Vec2 b{d(rng), d(rng)};
    if (q % 2 == 1) {
      a = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
      b = overlay.sitePositions()[static_cast<std::size_t>(pickSite(rng))];
    }
    const auto ref = testkit::referenceOverlayQuery(overlay, a, b);
    const auto fresh = overlay.waypointsWithDistance(a, b);
    ASSERT_EQ(fresh.reachable, ref.reachable) << "q=" << q;
    if (!fresh.reachable) continue;
    EXPECT_NEAR(fresh.distance, ref.distance, 1e-6) << "q=" << q;
  }
  OverlayGraph::setTableLimitsForTest(prevLimits.first, prevLimits.second);
}

/// Regression for the grazing-segment class: queries whose endpoint-site
/// segments run exactly along hull edges or through hull corners. The
/// engine tests visibility endpoint-first; before the orientation fix the
/// asymmetric visible() verdicts on such segments made the incremental
/// answer diverge from the rebuild. Exact coordinates, no jitter: two
/// axis-aligned square hulls with aligned edge lines, hand-picked queries
/// collinear with the shared edge lines and diagonals through corners,
/// checked in both orientations and both edge modes against the testkit's
/// rebuild + dijkstra ground truth.
TEST(OverlayParity, GrazingSegmentsMatchRebuild) {
  // Two square holes; the corridor x in [2, 4] separates them. Extra
  // corridor nodes keep the "LDel" point set more than just hull corners.
  const std::vector<geom::Vec2> pts = {
      {0, 0}, {2, 0}, {2, 2}, {0, 2},  // square A corners (sites 0-3)
      {4, 0}, {6, 0}, {6, 2}, {4, 2},  // square B corners (sites 4-7)
      {3, 1}, {3, 3}, {3, -1},         // corridor nodes
  };
  graph::GeometricGraph ldel(pts);
  const std::vector<std::vector<graph::NodeId>> rings = {{0, 1, 2, 3}, {4, 5, 6, 7}};
  const std::vector<geom::Polygon> holes = {
      geom::Polygon({{0, 0}, {2, 0}, {2, 2}, {0, 2}}),
      geom::Polygon({{4, 0}, {6, 0}, {6, 2}, {4, 2}}),
  };

  const std::vector<std::pair<geom::Vec2, geom::Vec2>> queries = {
      {{-1, 0}, {7, 0}},    // collinear with both bottom edges (y = 0)
      {{-1, 2}, {7, 2}},    // collinear with both top edges (y = 2)
      {{-1, -1}, {3, 3}},   // diagonal through corner (2, 2)
      {{3, -1}, {7, 3}},    // diagonal through corner (4, 0)... grazing B
      {{2, 3}, {4, -1}},    // crosses the corridor touching both hulls
      {{-1, 1}, {7, 1}},    // blocked by both holes: must route around
      {{2, 0}, {4, 2}},     // site corner to site corner across the gap
      {{3, 1}, {3, 3}},     // node-coincident endpoints in the corridor
  };

  for (const EdgeMode em : {EdgeMode::Visibility, EdgeMode::Delaunay}) {
    const OverlayGraph overlay(ldel, rings, holes, em);
    ASSERT_EQ(overlay.sites().size(), 8u);
    for (std::size_t q = 0; q < queries.size(); ++q) {
      const auto [a, b] = queries[q];
      for (const auto& [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
        const auto ref = testkit::referenceOverlayQuery(overlay, from, to);
        const auto fresh = overlay.waypointsWithDistance(from, to);
        ASSERT_EQ(fresh.reachable, ref.reachable)
            << "mode=" << static_cast<int>(em) << " q=" << q;
        if (!fresh.reachable) continue;
        EXPECT_NEAR(fresh.distance, ref.distance, 1e-9)
            << "mode=" << static_cast<int>(em) << " q=" << q;
        if (fresh.waypoints != ref.waypoints) {
          double len = 0.0;
          geom::Vec2 prev = from;
          for (graph::NodeId w : fresh.waypoints) {
            len += geom::dist(prev, ldel.position(w));
            prev = ldel.position(w);
          }
          len += geom::dist(prev, to);
          EXPECT_NEAR(len, ref.distance, 1e-9)
              << "mode=" << static_cast<int>(em) << " q=" << q;
        }
      }
    }
  }
}

/// The same failure class hunted statistically: the hull_tangent generator
/// builds low-jitter twin-rectangle deployments whose hole hulls run
/// parallel and nearly touch, so endpoint visibility segments keep grazing
/// hull corners. Full-pipeline networks, engine vs rebuild ground truth.
TEST(OverlayParity, HullTangentSweepMatchesRebuild) {
  int checked = 0;
  const auto* gen = testkit::findGenerator("hull_tangent");
  ASSERT_NE(gen, nullptr);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto sc = gen->make(seed);
    const core::HybridNetwork net(sc.points, sc.radius);
    const auto router = net.makeRouter({SiteMode::HullNodes, EdgeMode::Visibility, true});
    const OverlayGraph& overlay = router->overlay();
    if (overlay.sites().empty()) continue;

    // Probe along the tangent band: horizontal sweeps at the hull top/
    // bottom edge heights plus random endpoints around them.
    const auto bbox = geom::BBox::of(net.ldel().positions());
    std::mt19937_64 rng(testkit::deriveSeed(seed, 0x74616e67));
    std::uniform_real_distribution<double> dx(bbox.lo.x, bbox.hi.x);
    std::uniform_real_distribution<double> dy(bbox.lo.y, bbox.hi.y);
    for (int q = 0; q < 12; ++q) {
      const geom::Vec2 a{dx(rng), dy(rng)};
      const geom::Vec2 b{dx(rng), dy(rng)};
      const auto ref = testkit::referenceOverlayQuery(overlay, a, b);
      const auto fresh = overlay.waypointsWithDistance(a, b);
      ASSERT_EQ(fresh.reachable, ref.reachable) << "seed=" << seed << " q=" << q;
      if (fresh.reachable) {
        EXPECT_NEAR(fresh.distance, ref.distance, 1e-6) << "seed=" << seed << " q=" << q;
      }
      ++checked;
    }
  }
  EXPECT_GE(checked, 36);
}

}  // namespace
}  // namespace hybrid::routing
