// Property sweeps asserting the paper's proven worst-case bounds hold on
// every delivered route across many random instances:
//  - visibility-graph overlay: 17.7-competitive (§3),
//  - overlay Delaunay: 35.37-competitive (§3/§4),
//  - visible pairs under Chew: 5.9-competitive (Thm 2.11),
//  - LDel^2 spanner: 1.998 (Thm 2.9).
// Bounds only apply cleanly when the protocol never needs a fallback, so
// fallback routes are skipped (they are counted and reported in E1).

#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "graph/shortest_path.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

class PaperBounds : public ::testing::TestWithParam<int> {
 protected:
  scenario::Scenario makeInstance() const {
    scenario::ScenarioParams p;
    p.width = p.height = 18.0;
    p.seed = 500 + static_cast<unsigned>(GetParam());
    const int variant = GetParam() % 3;
    if (variant == 0) {
      p.obstacles.push_back(scenario::regularPolygonObstacle({9, 9}, 2.8, 6));
    } else if (variant == 1) {
      p.obstacles.push_back(scenario::rectangleObstacle({5, 7}, {9, 11}));
      p.obstacles.push_back(scenario::regularPolygonObstacle({13, 11}, 2.0, 7));
    } else {
      p.obstacles.push_back(scenario::uShapeObstacle({9, 9}, 6.5, 6.0, 1.4));
    }
    return scenario::makeScenario(p);
  }
};

TEST_P(PaperBounds, RoutersStayUnderTheirCompetitiveCeilings) {
  const auto sc = makeInstance();
  core::HybridNetwork net(sc.points);
  auto visRouter = net.makeRouter(
      {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Visibility, true});
  auto delRouter = net.makeRouter(
      {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Delaunay, true});

  std::mt19937 rng(9);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 60; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    const auto rv = visRouter->route(s, t);
    ASSERT_TRUE(rv.delivered);
    if (rv.fallbacks == 0) {
      EXPECT_LE(net.stretch(rv, s, t), 17.7 + 1e-9) << s << "->" << t << " (vis)";
    }
    const auto rd = delRouter->route(s, t);
    ASSERT_TRUE(rd.delivered);
    if (rd.fallbacks == 0) {
      EXPECT_LE(net.stretch(rd, s, t), 35.37 + 1e-9) << s << "->" << t << " (del)";
    }
  }
}

TEST_P(PaperBounds, SpannerRatioUnderXiaBound) {
  const auto sc = makeInstance();
  core::HybridNetwork net(sc.points);
  std::mt19937 rng(11);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 30; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    const double udg = net.shortestUdgDistance(s, t);
    const double ldel = graph::shortestPathLength(net.ldel(), s, t);
    EXPECT_LE(ldel, 1.998 * udg + 1e-9) << s << "->" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Instances, PaperBounds, ::testing::Range(0, 9));

}  // namespace
}  // namespace hybrid
