#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

TEST(PathPruning, NeverLongerAlwaysValid) {
  scenario::ScenarioParams p;
  p.width = p.height = 18.0;
  p.seed = 55;
  p.obstacles.push_back(scenario::regularPolygonObstacle({9, 9}, 2.8, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  auto plain = net.makeRouter({routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay,
                               true, false, /*prunePaths=*/false});
  auto pruned = net.makeRouter({routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay,
                                true, false, /*prunePaths=*/true});

  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  double sumPlain = 0.0;
  double sumPruned = 0.0;
  for (int it = 0; it < 80; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto a = plain->route(s, t);
    const auto b = pruned->route(s, t);
    ASSERT_TRUE(a.delivered);
    ASSERT_TRUE(b.delivered);
    // Pruned path: still a valid hop sequence from s to t...
    ASSERT_EQ(b.path.front(), s);
    ASSERT_EQ(b.path.back(), t);
    for (std::size_t i = 0; i + 1 < b.path.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(b.path[i], b.path[i + 1]));
    }
    // ...with no more hops and no greater length.
    EXPECT_LE(b.path.size(), a.path.size());
    EXPECT_LE(net.ldel().pathLength(b.path), net.ldel().pathLength(a.path) + 1e-9);
    sumPlain += net.stretch(a, s, t);
    sumPruned += net.stretch(b, s, t);
  }
  EXPECT_LE(sumPruned, sumPlain + 1e-9);
}

TEST(PathPruning, ShortcutsDetours) {
  // A route that zig-zags over a path graph collapses to the direct line.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({i * 0.5, 0.0});
  core::HybridNetwork net(pts);
  auto pruned = net.makeRouter({routing::SiteMode::HullNodes, routing::EdgeMode::Delaunay,
                                true, false, /*prunePaths=*/true});
  const auto r = pruned->route(0, 9);
  ASSERT_TRUE(r.delivered);
  // Nodes are 0.5 apart with unit radius: pruning keeps every other node.
  EXPECT_LE(r.path.size(), 6u);
}

}  // namespace
}  // namespace hybrid
