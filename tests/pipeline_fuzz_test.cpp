// Differential fuzzing of the whole pipeline: across many random seeds and
// obstacle mixes, a fixed battery of invariants must hold. This is the
// catch-all for rare geometric configurations that the targeted tests
// never generate.

#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/hybrid_network.hpp"
#include "graph/shortest_path.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "testkit/rng.hpp"

namespace hybrid {
namespace {

class PipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PipelineFuzz, InvariantBattery) {
  const int seed = GetParam();
  auto rng = testkit::loggedRng("pipeline-fuzz-battery",
                                static_cast<unsigned>(seed) * 977 + 13);
  std::uniform_real_distribution<double> uni(0.0, 1.0);

  scenario::ScenarioParams p;
  p.width = p.height = 14.0 + 6.0 * uni(rng);
  p.seed = static_cast<unsigned>(seed) + 4000;
  // 0-3 random obstacles of random shapes, kept away from each other.
  const int numObs = seed % 4;
  const double slots[3][2] = {{0.28, 0.3}, {0.7, 0.65}, {0.3, 0.72}};
  for (int o = 0; o < numObs; ++o) {
    const geom::Vec2 c{slots[o][0] * p.width, slots[o][1] * p.height};
    const double r = 1.4 + 1.2 * uni(rng);
    switch ((seed + o) % 3) {
      case 0:
        p.obstacles.push_back(scenario::regularPolygonObstacle(c, r, 5 + o, uni(rng)));
        break;
      case 1:
        p.obstacles.push_back(
            scenario::rectangleObstacle({c.x - r, c.y - r * 0.7}, {c.x + r, c.y + r * 0.7}));
        break;
      default:
        p.obstacles.push_back(scenario::uShapeObstacle(c, 2.0 * r, 1.7 * r, 1.3));
        break;
    }
  }
  const auto sc = scenario::makeScenario(p);
  ASSERT_GT(sc.points.size(), 200u);
  core::HybridNetwork net(sc.points);

  // I1: the LDel graph is a planar connected spanner-candidate.
  EXPECT_EQ(net.ldelResult().removedCrossings, 0) << "seed " << seed;
  EXPECT_TRUE(net.ldel().isConnected());

  // I2: every hole ring is a closed walk of graph edges (inner holes).
  for (const auto& h : net.holes().holes) {
    if (h.outer) continue;
    for (std::size_t i = 0; i < h.ring.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(h.ring[i], h.ring[(i + 1) % h.ring.size()]))
          << "seed " << seed;
    }
  }

  // I3: abstraction sandwich |hull| <= |lch| <= |ring| and hull encloses.
  for (const auto& a : net.abstractions()) {
    const auto& ring = net.holes().holes[static_cast<std::size_t>(a.holeIndex)].ring;
    EXPECT_LE(a.hullNodes.size(), a.locallyConvexHull.size());
    EXPECT_LE(a.locallyConvexHull.size(), ring.size());
    if (a.hullPolygon.size() >= 3) {
      for (graph::NodeId v : ring) {
        EXPECT_TRUE(a.hullPolygon.contains(net.ldel().position(v))) << "seed " << seed;
      }
    }
  }

  // I4: routing battery — delivery, validity, sane stretch, few fallbacks.
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int fallbacks = 0;
  for (int it = 0; it < 25; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = net.route(s, t);
    ASSERT_TRUE(r.delivered) << "seed " << seed << ": " << s << "->" << t;
    for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
      ASSERT_TRUE(net.ldel().hasEdge(r.path[i], r.path[i + 1])) << "seed " << seed;
    }
    EXPECT_LT(net.stretch(r, s, t), 36.0) << "seed " << seed;
    fallbacks += r.fallbacks;
  }
  EXPECT_LE(fallbacks, 6) << "seed " << seed;

  // I5: storage classes behave.
  const auto rep = net.storageReport();
  EXPECT_EQ(rep.maxOtherNodeStorage, 1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace hybrid
