#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

scenario::Scenario squareHoleScenario(unsigned seed = 3) {
  scenario::ScenarioParams p;
  p.width = 20.0;
  p.height = 20.0;
  p.seed = seed;
  p.obstacles.push_back(scenario::rectangleObstacle({7.5, 7.5}, {12.5, 12.5}));
  return scenario::makeScenario(p);
}

TEST(Pipeline, ScenarioIsConnectedAndDuplicateFree) {
  const auto s = squareHoleScenario();
  ASSERT_GT(s.points.size(), 500u);
  core::HybridNetwork net(s.points);
  EXPECT_TRUE(net.udg().isConnected());
  EXPECT_TRUE(net.ldel().isConnected());
}

TEST(Pipeline, LdelIsPlanarAndSubgraphOfUdg) {
  const auto s = squareHoleScenario();
  core::HybridNetwork net(s.points);
  EXPECT_EQ(net.ldelResult().removedCrossings, 0);
  EXPECT_TRUE(net.ldel().isPlanarEmbedding());
  for (const auto& [u, v] : net.ldel().edges()) {
    EXPECT_TRUE(net.udg().hasEdge(u, v)) << u << "," << v;
  }
}

TEST(Pipeline, DetectsTheCarvedHole) {
  const auto s = squareHoleScenario();
  core::HybridNetwork net(s.points);
  // At least one inner hole whose polygon contains the obstacle center.
  bool found = false;
  for (const auto& h : net.holes().holes) {
    if (!h.outer && h.polygon.contains({10.0, 10.0})) {
      found = true;
      EXPECT_GE(h.ring.size(), 8u);  // a 5x5 hole has a long boundary
    }
  }
  EXPECT_TRUE(found);
}

TEST(Pipeline, AbstractionHullIsConvexAndEnclosesHole) {
  const auto s = squareHoleScenario();
  core::HybridNetwork net(s.points);
  ASSERT_FALSE(net.abstractions().empty());
  for (const auto& a : net.abstractions()) {
    if (a.hullPolygon.size() < 3) continue;
    EXPECT_TRUE(a.hullPolygon.isConvex());
    const auto& hole = net.holes().holes[static_cast<std::size_t>(a.holeIndex)];
    for (graph::NodeId v : hole.ring) {
      EXPECT_TRUE(a.hullPolygon.contains(net.ldel().position(v)));
    }
    // Locally convex hull is sandwiched between hull and full ring.
    EXPECT_LE(a.hullNodes.size(), a.locallyConvexHull.size());
    EXPECT_LE(a.locallyConvexHull.size(), hole.ring.size());
  }
  EXPECT_TRUE(net.convexHullsDisjoint());
}

TEST(Pipeline, HybridRouterDeliversAllPairs) {
  const auto s = squareHoleScenario();
  core::HybridNetwork net(s.points);
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(s.points.size()) - 1);
  int totalFallbacks = 0;
  for (int i = 0; i < 100; ++i) {
    const int a = pick(rng);
    const int b = pick(rng);
    const auto r = net.route(a, b);
    ASSERT_TRUE(r.delivered) << "pair " << a << " -> " << b;
    const double st = net.stretch(r, a, b);
    EXPECT_GE(st, 1.0 - 1e-9);
    EXPECT_LT(st, 40.0) << "stretch way beyond the paper's constants";
    totalFallbacks += r.fallbacks;
  }
  // The protocol should cover nearly all pairs without global fallbacks.
  EXPECT_LE(totalFallbacks, 10);
}

TEST(Pipeline, StorageIndependentOfDensity) {
  // Same hole, two densities: hull storage must not grow with n.
  scenario::ScenarioParams p1;
  p1.width = p1.height = 18.0;
  p1.obstacles.push_back(scenario::rectangleObstacle({7.0, 7.0}, {11.0, 11.0}));
  p1.seed = 5;
  scenario::ScenarioParams p2 = p1;
  p2.spacing = p1.spacing * 0.7;  // ~2x the nodes
  core::HybridNetwork net1(scenario::makeScenario(p1).points);
  core::HybridNetwork net2(scenario::makeScenario(p2).points);
  ASSERT_FALSE(net1.abstractions().empty());
  ASSERT_FALSE(net2.abstractions().empty());
  const auto r1 = net1.storageReport();
  const auto r2 = net2.storageReport();
  EXPECT_EQ(r1.maxOtherNodeStorage, 1);
  EXPECT_EQ(r2.maxOtherNodeStorage, 1);
  // Hull size tracks the hole geometry, not n: allow modest variation.
  EXPECT_LT(static_cast<double>(r2.maxHullNodeStorage),
            2.0 * static_cast<double>(r1.maxHullNodeStorage) + 8.0);
}

}  // namespace
}  // namespace hybrid
