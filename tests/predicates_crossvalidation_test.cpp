// Cross-validation of the filtered/exact predicates against independent
// exact integer arithmetic (__int128). Points are snapped to a grid so
// every coordinate and intermediate product is exactly representable; the
// integer evaluation is then ground truth.

#include <gtest/gtest.h>

#include <random>

#include "geom/predicates.hpp"
#include "testkit/rng.hpp"

namespace hybrid::geom {
namespace {

using I128 = __int128;

int sign128(I128 v) { return v > 0 ? 1 : (v < 0 ? -1 : 0); }

// orient as exact integer determinant; coordinates must be integers.
int orientInt(long ax, long ay, long bx, long by, long cx, long cy) {
  const I128 det = static_cast<I128>(ax - cx) * (by - cy) -
                   static_cast<I128>(ay - cy) * (bx - cx);
  return sign128(det);
}

// inCircle as exact integer 3x3 determinant (lifted coordinates).
int inCircleInt(long ax, long ay, long bx, long by, long cx, long cy, long dx, long dy) {
  const I128 adx = ax - dx, ady = ay - dy;
  const I128 bdx = bx - dx, bdy = by - dy;
  const I128 cdx = cx - dx, cdy = cy - dy;
  const I128 alift = adx * adx + ady * ady;
  const I128 blift = bdx * bdx + bdy * bdy;
  const I128 clift = cdx * cdx + cdy * cdy;
  const I128 det = alift * (bdx * cdy - cdx * bdy) + blift * (cdx * ady - adx * cdy) +
                   clift * (adx * bdy - bdx * ady);
  return sign128(det);
}

class CrossValidation : public ::testing::TestWithParam<int> {};

TEST_P(CrossValidation, OrientMatchesIntegerTruth) {
  auto rng = testkit::loggedRng("predicates-crossvalidation",
                                static_cast<unsigned>(GetParam()) * 101 + 7);
  // Mix of ranges; small ranges produce many exact collinearities.
  const long ranges[] = {4, 64, 100000};
  for (const long range : ranges) {
    std::uniform_int_distribution<long> d(-range, range);
    for (int it = 0; it < 800; ++it) {
      const long ax = d(rng), ay = d(rng), bx = d(rng), by = d(rng), cx = d(rng),
                 cy = d(rng);
      const int expected = orientInt(ax, ay, bx, by, cx, cy);
      const int got = orient({static_cast<double>(ax), static_cast<double>(ay)},
                             {static_cast<double>(bx), static_cast<double>(by)},
                             {static_cast<double>(cx), static_cast<double>(cy)});
      ASSERT_EQ(got, expected) << ax << "," << ay << " " << bx << "," << by << " " << cx
                               << "," << cy;
    }
  }
}

TEST_P(CrossValidation, InCircleMatchesIntegerTruth) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 11);
  const long ranges[] = {3, 32, 20000};
  for (const long range : ranges) {
    std::uniform_int_distribution<long> d(-range, range);
    for (int it = 0; it < 500; ++it) {
      const long ax = d(rng), ay = d(rng), bx = d(rng), by = d(rng), cx = d(rng),
                 cy = d(rng), dx = d(rng), dy = d(rng);
      const int expected = inCircleInt(ax, ay, bx, by, cx, cy, dx, dy);
      const int got = inCircle({static_cast<double>(ax), static_cast<double>(ay)},
                               {static_cast<double>(bx), static_cast<double>(by)},
                               {static_cast<double>(cx), static_cast<double>(cy)},
                               {static_cast<double>(dx), static_cast<double>(dy)});
      ASSERT_EQ(got, expected);
    }
  }
}

TEST_P(CrossValidation, GabrielPredicateMatchesIntegerTruth) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 53 + 3);
  std::uniform_int_distribution<long> d(-40, 40);
  for (int it = 0; it < 800; ++it) {
    const long ax = d(rng), ay = d(rng), bx = d(rng), by = d(rng), px = d(rng),
               py = d(rng);
    // p strictly inside diametral circle of ab iff (a-p).(b-p) < 0.
    const I128 dot = static_cast<I128>(ax - px) * (bx - px) +
                     static_cast<I128>(ay - py) * (by - py);
    const bool expected = dot < 0;
    const bool got = inDiametralCircle({static_cast<double>(ax), static_cast<double>(ay)},
                                       {static_cast<double>(bx), static_cast<double>(by)},
                                       {static_cast<double>(px), static_cast<double>(py)});
    ASSERT_EQ(got, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossValidation, ::testing::Range(0, 6));

}  // namespace
}  // namespace hybrid::geom
