// Verifies the §4.3 case analysis instrumentation: every pair is assigned
// the correct case, and all five cases are actually exercised on a
// U-shaped hole (whose convex hull has a large interior).

#include <gtest/gtest.h>

#include <random>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

int nearestNode(const graph::GeometricGraph& g, geom::Vec2 p) {
  int best = 0;
  double bestD = 1e18;
  for (int v = 0; v < static_cast<int>(g.numNodes()); ++v) {
    const double d = geom::dist2(g.position(v), p);
    if (d < bestD) {
      bestD = d;
      best = v;
    }
  }
  return best;
}

class CaseFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::ScenarioParams p;
    p.width = p.height = 26.0;
    p.seed = 87;
    // Two separated U-shapes so cases 3 (different hulls) can occur.
    p.obstacles.push_back(scenario::uShapeObstacle({7.5, 13.0}, 7.5, 7.0, 1.4));
    p.obstacles.push_back(scenario::uShapeObstacle({19.0, 13.0}, 7.5, 7.0, 1.4));
    sc_ = new scenario::Scenario(scenario::makeScenario(p));
    net_ = new core::HybridNetwork(sc_->points);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete sc_;
  }
  static scenario::Scenario* sc_;
  static core::HybridNetwork* net_;
};

scenario::Scenario* CaseFixture::sc_ = nullptr;
core::HybridNetwork* CaseFixture::net_ = nullptr;

TEST_F(CaseFixture, CaseMatchesLocateResults) {
  auto& router = net_->router();
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc_->points.size()) - 1);
  for (int it = 0; it < 150; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t || net_->ldel().hasEdge(s, t)) continue;
    const auto locS = router.locate(net_->ldel().position(s));
    const auto locT = router.locate(net_->ldel().position(t));
    const auto r = router.route(s, t);
    ASSERT_TRUE(r.delivered);
    int expected = 1;
    if (locS && locT) {
      if (locS->abstraction == locT->abstraction) {
        expected = locS->bay == locT->bay ? 5 : 4;
      } else {
        expected = 3;
      }
    } else if (locS || locT) {
      expected = 2;
    }
    EXPECT_EQ(r.protocolCase, expected) << s << " -> " << t;
  }
}

TEST_F(CaseFixture, AllFiveCasesAreReachable) {
  auto& router = net_->router();
  // Hand-picked positions: outside, inside bay of hull 1, inside bay of
  // hull 2, and inside two different bays of hull 1 if available.
  const int outsideA = nearestNode(net_->ldel(), {2.0, 2.0});
  const int outsideB = nearestNode(net_->ldel(), {24.0, 2.0});
  const int bay1 = nearestNode(net_->ldel(), {7.5, 13.5});
  const int bay2 = nearestNode(net_->ldel(), {19.0, 13.5});
  const int bay1b = nearestNode(net_->ldel(), {7.5, 14.5});

  EXPECT_EQ(router.route(outsideA, outsideB).protocolCase, 1);
  EXPECT_EQ(router.route(bay1, outsideA).protocolCase, 2);
  EXPECT_EQ(router.route(outsideA, bay1).protocolCase, 2);
  EXPECT_EQ(router.route(bay1, bay2).protocolCase, 3);
  const auto r5 = router.route(bay1, bay1b);
  EXPECT_TRUE(r5.protocolCase == 5 || r5.protocolCase == 4 || r5.protocolCase == 0);
  // All routes deliver regardless of case.
  for (const auto& r : {router.route(outsideA, outsideB), router.route(bay1, outsideA),
                        router.route(bay1, bay2), router.route(bay1, bay1b)}) {
    EXPECT_TRUE(r.delivered);
  }
}

}  // namespace
}  // namespace hybrid
