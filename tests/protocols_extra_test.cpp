#include <gtest/gtest.h>

#include <algorithm>
#include <numbers>
#include <set>

#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "protocols/overlay_tree.hpp"
#include "protocols/preprocessing.hpp"
#include "protocols/ring_pipeline.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

// The ring pipeline must reproduce the oracle abstraction on a variety of
// hole shapes, not just the hexagon of the main test.
class RingPipelineVsOracle : public ::testing::TestWithParam<int> {};

TEST_P(RingPipelineVsOracle, HullsMatchOracle) {
  scenario::ScenarioParams p;
  p.width = p.height = 18.0;
  p.seed = 200 + static_cast<unsigned>(GetParam());
  switch (GetParam() % 4) {
    case 0:
      p.obstacles.push_back(scenario::regularPolygonObstacle({9, 9}, 3.0, 5));
      break;
    case 1:
      p.obstacles.push_back(scenario::rectangleObstacle({6, 7}, {12, 11}));
      break;
    case 2:
      p.obstacles.push_back(scenario::uShapeObstacle({9, 9}, 7.0, 6.0, 1.4));
      break;
    default:
      p.obstacles.push_back(scenario::regularPolygonObstacle({6, 6}, 2.0, 6));
      p.obstacles.push_back(scenario::regularPolygonObstacle({12.5, 12.5}, 2.0, 7));
      break;
  }
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  protocols::RingInputs rings;
  for (const auto& h : net.holes().holes) rings.rings.push_back(h.ring);
  protocols::RingPipeline pipeline(s, std::move(rings));
  const auto results = pipeline.run();

  for (std::size_t hi = 0; hi < net.holes().holes.size(); ++hi) {
    auto got = results[hi].hull;
    auto expect = net.abstractions()[hi].hullNodes;
    std::sort(got.begin(), got.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got, expect) << "hole " << hi << " variant " << GetParam();
    EXPECT_GT(results[hi].turningAngle, 0.0) << "holes turn ccw";
    // Leader is the minimum id of the (deduplicated) ring.
    std::set<int> ring(net.holes().holes[hi].ring.begin(),
                       net.holes().holes[hi].ring.end());
    EXPECT_EQ(results[hi].leader, *ring.begin());
    EXPECT_EQ(results[hi].size, static_cast<int>(ring.size()));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, RingPipelineVsOracle, ::testing::Range(0, 8));

TEST(OverlayTreeExtra, DeterministicPerSeedAndDifferentAcrossSeeds) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(500, 91));
  const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
  sim::Simulator s1(udg);
  sim::Simulator s2(udg);
  sim::Simulator s3(udg);
  const auto t1 = protocols::buildOverlayTree(s1, 7);
  const auto t2 = protocols::buildOverlayTree(s2, 7);
  const auto t3 = protocols::buildOverlayTree(s3, 8);
  EXPECT_EQ(t1.parent, t2.parent);
  EXPECT_NE(t1.parent, t3.parent);
  EXPECT_TRUE(t1.isSingleTree());
  EXPECT_TRUE(t3.isSingleTree());
}

TEST(OverlayTreeExtra, ParentChildConsistency) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(400, 92));
  const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
  sim::Simulator s(udg);
  const auto tree = protocols::buildOverlayTree(s, 3);
  for (std::size_t v = 0; v < tree.parent.size(); ++v) {
    const int p = tree.parent[v];
    if (p < 0) continue;
    const auto& ch = tree.children[static_cast<std::size_t>(p)];
    EXPECT_NE(std::find(ch.begin(), ch.end(), static_cast<int>(v)), ch.end())
        << "child link missing for " << v;
  }
  for (std::size_t v = 0; v < tree.children.size(); ++v) {
    for (int c : tree.children[v]) {
      EXPECT_EQ(tree.parent[static_cast<std::size_t>(c)], static_cast<int>(v));
    }
  }
}

TEST(PreprocessingExtra, HoleFreeNetworkStillBuildsTree) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(300, 93));
  core::HybridNetwork net(sc.points);
  sim::Simulator s(net.udg());
  protocols::PreprocessingReport rep;
  const auto out = protocols::runPreprocessing(net, s, &rep, 5);
  EXPECT_TRUE(rep.treeIsSingle);
  EXPECT_GT(rep.treeConstruction, 0);
  // With no inner holes, the hull-node clique is empty or tiny.
  std::size_t hullInfo = 0;
  for (const auto& k : out.hullKnowledge) hullInfo += k.size();
  // Whatever boundary artifacts exist, the result is consistent:
  for (std::size_t v = 0; v < out.hullKnowledge.size(); ++v) {
    if (!out.hullKnowledge[v].empty()) {
      EXPECT_NE(std::find(out.hullKnowledge[v].begin(), out.hullKnowledge[v].end(),
                          static_cast<int>(v)),
                out.hullKnowledge[v].end())
          << "hull node must know itself";
    }
  }
}

TEST(PreprocessingExtra, CommunicationWorkIsPolylog) {
  // Per-node communication of the ring phases alone (no tree) on a large
  // ring: Lemma 5.2 promises O(log k) messages per node.
  const int k = 2048;
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < k; ++i) {
    const double a = 2.0 * std::numbers::pi * i / k;
    pts.push_back({1000.0 * std::cos(a), 1000.0 * std::sin(a)});
  }
  const auto udg = delaunay::buildUnitDiskGraph(
      pts, 2.0 * 1000.0 * std::sin(std::numbers::pi / k) * 1.05);
  sim::Simulator s(udg);
  std::vector<int> ring(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ring[static_cast<std::size_t>(i)] = i;
  protocols::RingPipeline pipeline(s, {{ring}});
  pipeline.run();
  long maxMsgs = 0;
  for (const auto& st : s.stats()) {
    maxMsgs = std::max(maxMsgs, st.sentAdHoc + st.sentLongRange);
  }
  // 11 = log2(2048); allow a small constant factor.
  EXPECT_LE(maxMsgs, 8 * 11);
}

}  // namespace
}  // namespace hybrid
