#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <random>

#include "abstraction/dominating_set.hpp"
#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "protocols/bitonic_sort.hpp"
#include "protocols/dominating_set_protocol.hpp"
#include "protocols/overlay_tree.hpp"
#include "protocols/preprocessing.hpp"
#include "protocols/ring_pipeline.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

// A circle of k nodes with unit-disk radius just above the chord length, so
// the UDG is exactly the ring.
graph::GeometricGraph circleRing(int k, double radiusScale = 1.05) {
  std::vector<geom::Vec2> pts;
  const double r = 10.0;
  for (int i = 0; i < k; ++i) {
    const double a = 2.0 * std::numbers::pi * i / k;
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const double chord = 2.0 * r * std::sin(std::numbers::pi / k);
  return delaunay::buildUnitDiskGraph(pts, chord * radiusScale);
}

TEST(Simulator, EnforcesLinkRules) {
  const auto g = circleRing(8);
  sim::Simulator s(g);
  class Probe : public sim::Protocol {
   public:
    void onStart(sim::Context& ctx) override {
      if (ctx.self() != 0) return;
      EXPECT_THROW(ctx.sendAdHoc(4, sim::Message{}), std::logic_error);
      EXPECT_THROW(ctx.sendLongRange(4, sim::Message{}), std::logic_error);
      ctx.sendAdHoc(1, sim::Message{});  // neighbor: fine
      sim::Message intro;
      intro.ids = {4};
      ctx.sendAdHoc(1, std::move(intro));
    }
    void onMessage(sim::Context& ctx, const sim::Message& m) override {
      if (ctx.self() == 1 && !m.ids.empty()) {
        // Node 1 learned node 4 by introduction; long-range now legal.
        EXPECT_TRUE(ctx.knows(4));
        ctx.sendLongRange(4, sim::Message{});
      }
    }
  } probe;
  const int rounds = s.run(probe);
  EXPECT_EQ(rounds, 2);
  EXPECT_GE(s.totalMessages(), 3L);
}

class RingPipelineSweep : public ::testing::TestWithParam<int> {};

TEST_P(RingPipelineSweep, ElectsLeaderSizeAngleAndHull) {
  const int k = GetParam();
  const auto g = circleRing(k);
  sim::Simulator s(g);
  std::vector<int> ring(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ring[static_cast<std::size_t>(i)] = i;

  protocols::RingPipeline pipeline(s, {{ring}});
  const auto results = pipeline.run();
  ASSERT_EQ(results.size(), 1u);
  const auto& r = results[0];
  EXPECT_EQ(r.leader, 0);
  EXPECT_EQ(r.size, k);
  // Counter-clockwise circle: turning angle +2*pi.
  EXPECT_NEAR(r.turningAngle, 2.0 * std::numbers::pi, 1e-6);
  // All circle points are hull points.
  EXPECT_EQ(r.hull.size(), static_cast<std::size_t>(k));

  // Round complexity: all four phases O(log k).
  const auto& rounds = pipeline.rounds();
  const int logk = static_cast<int>(std::ceil(std::log2(k)));
  EXPECT_LE(rounds.pointerJumping, logk + 4);
  EXPECT_LE(rounds.aggregation, logk + 4);
  EXPECT_LE(rounds.broadcast, logk + 4);
  EXPECT_LE(rounds.idAssignment, 2 * logk + 6);

  // Every node got its ring-distance ID.
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(pipeline.ringIdOf(i), i) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RingPipelineSweep,
                         ::testing::Values(3, 4, 5, 7, 8, 13, 16, 21, 32, 33, 100, 128,
                                           255, 256, 257, 512));

TEST(RingPipeline, ClockwiseRingHasNegativeAngle) {
  const int k = 24;
  const auto g = circleRing(k);
  sim::Simulator s(g);
  std::vector<int> ring;
  for (int i = k; i-- > 0;) ring.push_back(i);  // clockwise order
  protocols::RingPipeline pipeline(s, {{ring}});
  const auto results = pipeline.run();
  EXPECT_NEAR(results[0].turningAngle, -2.0 * std::numbers::pi, 1e-6);
}

TEST(RingPipeline, NonConvexRingHullIsSubset) {
  // A star-shaped (alternating radius) ring: only the outer points are on
  // the hull.
  const int k = 16;
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < k; ++i) {
    const double a = 2.0 * std::numbers::pi * i / k;
    const double r = i % 2 == 0 ? 10.0 : 7.0;
    pts.push_back({r * std::cos(a), r * std::sin(a)});
  }
  const auto g = delaunay::buildUnitDiskGraph(pts, 5.0);
  sim::Simulator s(g);
  std::vector<int> ring(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) ring[static_cast<std::size_t>(i)] = i;
  protocols::RingPipeline pipeline(s, {{ring}});
  const auto results = pipeline.run();
  ASSERT_EQ(results[0].hull.size(), 8u);
  for (int v : results[0].hull) EXPECT_EQ(v % 2, 0);
}

class BitonicSweep : public ::testing::TestWithParam<int> {};

TEST_P(BitonicSweep, SortsAndUsesLogSquaredRounds) {
  const int k = GetParam();
  const auto g = circleRing(k);
  sim::Simulator s(g);
  std::vector<int> ring(static_cast<std::size_t>(k));
  std::vector<double> keys(static_cast<std::size_t>(k));
  std::mt19937 rng(static_cast<unsigned>(k));
  std::uniform_real_distribution<double> d(-100.0, 100.0);
  for (int i = 0; i < k; ++i) {
    ring[static_cast<std::size_t>(i)] = i;
    keys[static_cast<std::size_t>(i)] = d(rng);
  }
  protocols::BitonicSorter sorter(s, ring, keys);
  const int rounds = sorter.run();
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(sorter.sortedKeys(), expected);
  const int logk = static_cast<int>(std::log2(k));
  EXPECT_EQ(rounds, logk * (logk + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitonicSweep, ::testing::Values(2, 4, 8, 16, 64, 256, 1024));

TEST(Bitonic, RejectsNonPowerOfTwo) {
  const auto g = circleRing(6);
  sim::Simulator s(g);
  EXPECT_THROW(protocols::BitonicSorter(s, {0, 1, 2, 3, 4, 5}, {1, 2, 3, 4, 5, 6}),
               std::invalid_argument);
}

class DsSweep : public ::testing::TestWithParam<int> {};

TEST_P(DsSweep, DominatesWithConstantApproximation) {
  const int len = GetParam();
  // Build a long path embedded on a line.
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < len; ++i) pts.push_back({static_cast<double>(i) * 0.9, 0.0});
  const auto g = delaunay::buildUnitDiskGraph(pts, 1.0);
  sim::Simulator s(g);
  std::vector<int> chain(static_cast<std::size_t>(len));
  for (int i = 0; i < len; ++i) chain[static_cast<std::size_t>(i)] = i;

  protocols::DominatingSetProtocol proto(s, {chain}, 7);
  const int rounds = proto.run();
  const auto& ds = proto.dominatingSet(0);
  EXPECT_TRUE(abstraction::dominatesChain(chain, ds));
  // Optimal is ceil(len/3); the randomized protocol should stay within ~3x.
  EXPECT_LE(ds.size(), static_cast<std::size_t>((len + 2) / 3) * 3 + 2);
  // O(log n) super-rounds of three rounds each (randomized; generous slack).
  EXPECT_LE(rounds, 3 * (3 * static_cast<int>(std::log2(len + 1)) + 12));
}

INSTANTIATE_TEST_SUITE_P(Lengths, DsSweep, ::testing::Values(2, 3, 5, 10, 40, 200, 1000));

TEST(OverlayTree, SingleTreeWithLogarithmicHeight) {
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = 11;
  const auto sc = scenario::makeScenario(p);
  const auto udg = delaunay::buildUnitDiskGraph(sc.points, 1.0);
  sim::Simulator s(udg);
  const auto tree = protocols::buildOverlayTree(s, 5);
  EXPECT_TRUE(tree.isSingleTree());
  const int logn = static_cast<int>(std::ceil(std::log2(sc.points.size())));
  EXPECT_LE(tree.height, 4 * logn);
  // O(log^2 n) construction rounds (phases x per-phase budget).
  EXPECT_LE(tree.rounds, 24 * logn * logn + 128);
}

TEST(Preprocessing, MatchesOracleAbstraction) {
  scenario::ScenarioParams p;
  p.width = p.height = 18.0;
  p.seed = 21;
  p.obstacles.push_back(scenario::regularPolygonObstacle({9.0, 9.0}, 3.0, 8));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  ASSERT_FALSE(net.abstractions().empty());

  sim::Simulator s(net.udg());
  protocols::PreprocessingReport rep;
  const auto outputs = protocols::runPreprocessing(net, s, &rep, 13);

  // Ring results must reproduce the oracle hulls for every hole.
  for (std::size_t hi = 0; hi < net.holes().holes.size(); ++hi) {
    const auto& oracle = net.abstractions()[hi];
    auto distHull = outputs.ringResults[hi].hull;
    auto oracleHull = oracle.hullNodes;
    std::sort(distHull.begin(), distHull.end());
    std::sort(oracleHull.begin(), oracleHull.end());
    EXPECT_EQ(distHull, oracleHull) << "hole " << hi;
    // Holes turn counter-clockwise (+2*pi).
    EXPECT_NEAR(outputs.ringResults[hi].turningAngle, 2.0 * std::numbers::pi, 1e-6);
    EXPECT_EQ(outputs.ringResults[hi].size,
              static_cast<int>(protocols::RingInputs{{net.holes().holes[hi].ring}}
                                   .rings[0]
                                   .size()));
  }
  // The outer boundary (last ring) turns clockwise.
  EXPECT_NEAR(outputs.ringResults.back().turningAngle, -2.0 * std::numbers::pi, 1e-6);

  // Every hull node learned every other hull node (the clique of §5.5).
  std::vector<int> allHull;
  for (std::size_t hi = 0; hi < net.holes().holes.size(); ++hi) {
    allHull.insert(allHull.end(), outputs.ringResults[hi].hull.begin(),
                   outputs.ringResults[hi].hull.end());
  }
  std::sort(allHull.begin(), allHull.end());
  allHull.erase(std::unique(allHull.begin(), allHull.end()), allHull.end());
  for (int v : allHull) {
    auto knows = outputs.hullKnowledge[static_cast<std::size_t>(v)];
    std::sort(knows.begin(), knows.end());
    EXPECT_EQ(knows, allHull) << "hull node " << v;
  }

  // Dominating sets dominate their bays.
  std::size_t flat = 0;
  for (const auto& a : net.abstractions()) {
    for (const auto& bay : a.bays) {
      EXPECT_TRUE(abstraction::dominatesChain(bay.chain, outputs.bayDominatingSets[flat]))
          << "bay " << flat;
      ++flat;
    }
  }

  EXPECT_TRUE(rep.treeIsSingle);
  EXPECT_GT(rep.totalRounds(), 0);
  EXPECT_LT(rep.dynamicRounds(), rep.totalRounds());
}

}  // namespace
}  // namespace hybrid
