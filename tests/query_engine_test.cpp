#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "alloc_counter.hpp"
#include "core/hybrid_network.hpp"
#include "graph/csr.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "graph/shortest_path.hpp"
#include "routing/overlay_graph.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::graph {
namespace {

GeometricGraph randomConnectedGraph(unsigned seed, int n, double radius) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> coord(0.0, 10.0);
  GeometricGraph g;
  for (int i = 0; i < n; ++i) g.addNode({coord(rng), coord(rng)});
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      if (geom::dist(g.position(u), g.position(v)) <= radius) g.addEdge(u, v);
    }
  }
  // Chain every node to its successor so the graph is connected and the
  // dijkstra comparison never degenerates to "everything unreachable".
  for (NodeId u = 0; u + 1 < n; ++u) g.addEdge(u, u + 1);
  return g;
}

TEST(QueryEngine, CsrMatchesAdjacency) {
  const auto g = randomConnectedGraph(7, 120, 2.0);
  const auto csr = buildCsr(g);
  ASSERT_EQ(csr.numNodes(), g.numNodes());
  EXPECT_EQ(csr.numDirectedEdges(), 2 * g.numEdges());
  for (NodeId v = 0; v < static_cast<NodeId>(g.numNodes()); ++v) {
    const auto ref = g.neighbors(v);
    const auto got = csr.neighbors(v);
    const auto w = csr.edgeWeights(v);
    ASSERT_EQ(got.size(), ref.size());
    ASSERT_EQ(w.size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]);
      EXPECT_DOUBLE_EQ(w[i], g.edgeLength(v, ref[i]));
    }
  }
}

TEST(QueryEngine, CsrFromExplicitAdjacency) {
  const std::vector<geom::Vec2> pos{{0, 0}, {3, 0}, {3, 4}};
  const std::vector<std::vector<int>> adj{{1, 2}, {0}, {0}};
  const auto csr = buildCsr(adj, pos);
  ASSERT_EQ(csr.numNodes(), 3u);
  ASSERT_EQ(csr.neighbors(0).size(), 2u);
  EXPECT_DOUBLE_EQ(csr.edgeWeights(0)[0], 3.0);
  EXPECT_DOUBLE_EQ(csr.edgeWeights(0)[1], 5.0);
  EXPECT_EQ(csr.neighbors(1)[0], 0);
  EXPECT_DOUBLE_EQ(csr.edgeWeights(2)[0], 5.0);
}

TEST(QueryEngine, WorkspaceDijkstraMatchesReference) {
  std::vector<NodeId> wsPath;
  DijkstraWorkspace ws;
  for (unsigned seed : {1u, 2u, 3u, 4u, 5u}) {
    const auto g = randomConnectedGraph(seed, 150, 1.6);
    const auto csr = buildCsr(g);
    const int n = static_cast<int>(g.numNodes());
    for (NodeId s : {0, n / 2, n - 1}) {
      const auto ref = dijkstra(g, s);
      ws.run(csr, s);
      for (NodeId v = 0; v < n; ++v) {
        EXPECT_DOUBLE_EQ(ws.dist(v), ref.dist[static_cast<std::size_t>(v)]);
        // Identical tie-breaking: the whole predecessor tree matches.
        EXPECT_EQ(ws.pred(v), ref.pred[static_cast<std::size_t>(v)]);
      }
      ws.pathTo(n - 1, wsPath);
      EXPECT_EQ(wsPath, ref.pathTo(n - 1));
    }
  }
}

TEST(QueryEngine, WorkspaceEarlyExitTargetDistanceIsExact) {
  const auto g = randomConnectedGraph(11, 200, 1.5);
  const auto csr = buildCsr(g);
  DijkstraWorkspace ws;
  const NodeId t = static_cast<NodeId>(g.numNodes()) - 1;
  ws.run(csr, 0, t);
  const auto ref = dijkstra(g, 0, t);
  EXPECT_DOUBLE_EQ(ws.dist(t), ref.dist[static_cast<std::size_t>(t)]);
}

TEST(QueryEngine, WorkspaceGenerationsInvalidateStaleResults) {
  GeometricGraph g;
  g.addNode({0, 0});
  g.addNode({1, 0});
  g.addNode({5, 5});  // isolated from node 0 except via the chain below
  g.addEdge(0, 1);
  const auto csr = buildCsr(g);
  DijkstraWorkspace ws;
  ws.run(csr, 0);
  EXPECT_DOUBLE_EQ(ws.dist(1), 1.0);
  EXPECT_EQ(ws.dist(2), DijkstraWorkspace::kUnreached);
  // Re-run from the isolated node: old slots must read as unreached.
  ws.run(csr, 2);
  EXPECT_DOUBLE_EQ(ws.dist(2), 0.0);
  EXPECT_EQ(ws.dist(0), DijkstraWorkspace::kUnreached);
  EXPECT_EQ(ws.pred(1), -1);
  std::vector<NodeId> path;
  ws.pathTo(0, path);
  EXPECT_TRUE(path.empty());
}

TEST(QueryEngine, RepeatedWorkspaceRunsAreAllocationFree) {
  const auto g = randomConnectedGraph(3, 300, 1.5);
  const auto csr = buildCsr(g);
  DijkstraWorkspace ws;
  std::vector<NodeId> path;
  // Warm up with the same query mix: grows dist/pred/stamp, the heap's
  // high-water capacity, and the path vector once.
  auto sweep = [&] {
    for (int it = 0; it < 50; ++it) {
      const NodeId s = static_cast<NodeId>((it * 13) % g.numNodes());
      ws.run(csr, s);
      ws.pathTo(static_cast<NodeId>((it * 29) % g.numNodes()), path);
    }
  };
  sweep();
  const long before = testsupport::heapAllocCount();
  sweep();
  if (testsupport::heapAllocCountingEnabled()) {
    EXPECT_EQ(testsupport::heapAllocCount(), before);
  }
}

TEST(QueryEngine, PathToRejectsCorruptPredecessorCycle) {
  ShortestPathTree t;
  t.dist = {0.0, 1.0, 2.0};
  t.pred = {-1, 2, 1};  // 1 <-> 2 cycle never reaches the source
  EXPECT_TRUE(t.pathTo(2).empty());
  // A healthy chain still reconstructs.
  t.pred = {-1, 0, 1};
  EXPECT_EQ(t.pathTo(2), (std::vector<NodeId>{0, 1, 2}));
}

}  // namespace
}  // namespace hybrid::graph

namespace hybrid::routing {
namespace {

TEST(QueryEngine, OverlayWorkspaceQueriesAreAllocationFree) {
  scenario::ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 77;
  p.obstacles.push_back(scenario::rectangleObstacle({5.0, 5.0}, {9.0, 9.0}));
  const auto sc = scenario::makeScenario(p);
  const core::HybridNetwork net(sc.points);
  const auto router =
      net.makeRouter({SiteMode::HullNodes, EdgeMode::Visibility, true});
  const OverlayGraph& overlay = router->overlay();
  ASSERT_TRUE(overlay.servesIncrementally());

  OverlayQueryWorkspace ws;
  OverlayRoute out;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(1.0, 13.0);
  std::vector<std::pair<geom::Vec2, geom::Vec2>> queries;
  for (int it = 0; it < 100; ++it) {
    queries.push_back({{d(rng), d(rng)}, {d(rng), d(rng)}});
  }
  overlay.query({2.0, 7.0}, {12.0, 7.0}, ws, out);
  ASSERT_TRUE(out.reachable);
  ASSERT_FALSE(out.waypoints.empty());
  // Warm-up sweep over the exact measured query mix so every scratch
  // vector reaches its high-water capacity.
  for (const auto& [a, b] : queries) overlay.query(a, b, ws, out);

  const long before = testsupport::heapAllocCount();
  for (const auto& [a, b] : queries) overlay.query(a, b, ws, out);
  if (testsupport::heapAllocCountingEnabled()) {
    EXPECT_EQ(testsupport::heapAllocCount(), before);
  }
}

TEST(QueryEngine, HubLabelWorkspaceQueriesAreAllocationFree) {
  // Same contract as the dense-table test above, but with the hub-bucket
  // scan: the generation-stamped bucket arrays must reach steady state
  // after warm-up instead of reallocating per query.
  scenario::ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 77;
  p.obstacles.push_back(scenario::rectangleObstacle({5.0, 5.0}, {9.0, 9.0}));
  const auto sc = scenario::makeScenario(p);
  const core::HybridNetwork net(sc.points);
  HybridOptions opts{SiteMode::HullNodes, EdgeMode::Visibility, true};
  opts.table = TableMode::HubLabels;
  const auto router = net.makeRouter(opts);
  const OverlayGraph& overlay = router->overlay();
  ASSERT_TRUE(overlay.servesIncrementally());
  ASSERT_TRUE(overlay.usesHubLabels());

  OverlayQueryWorkspace ws;
  OverlayRoute out;
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> d(1.0, 13.0);
  std::vector<std::pair<geom::Vec2, geom::Vec2>> queries;
  for (int it = 0; it < 100; ++it) {
    queries.push_back({{d(rng), d(rng)}, {d(rng), d(rng)}});
  }
  overlay.query({2.0, 7.0}, {12.0, 7.0}, ws, out);
  ASSERT_TRUE(out.reachable);
  ASSERT_FALSE(out.waypoints.empty());
  for (const auto& [a, b] : queries) overlay.query(a, b, ws, out);

  const long before = testsupport::heapAllocCount();
  for (const auto& [a, b] : queries) overlay.query(a, b, ws, out);
  if (testsupport::heapAllocCountingEnabled()) {
    EXPECT_EQ(testsupport::heapAllocCount(), before);
  }
}

}  // namespace
}  // namespace hybrid::routing
