#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/hybrid_network.hpp"
#include "routing/baselines.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::routing {
namespace {

bool sameResult(const RouteResult& a, const RouteResult& b) {
  return a.path == b.path && a.delivered == b.delivered &&
         a.blockedHole == b.blockedHole && a.fallbacks == b.fallbacks &&
         a.bayExtremePoints == b.bayExtremePoints && a.protocolCase == b.protocolCase;
}

std::vector<RoutePair> randomPairs(std::size_t n, unsigned seed, std::size_t count) {
  std::mt19937 rng(seed);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(n) - 1);
  std::vector<RoutePair> pairs;
  pairs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pairs.push_back({pick(rng), pick(rng)});
  }
  return pairs;
}

class RouteBatchFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::ScenarioParams p;
    p.width = p.height = 12.0;
    p.seed = 33;
    p.obstacles.push_back(scenario::uShapeObstacle({6.0, 5.0}, 4.0, 3.5, 0.8));
    sc_ = new scenario::Scenario(scenario::makeScenario(p));
    net_ = new core::HybridNetwork(sc_->points);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete sc_;
  }
  static scenario::Scenario* sc_;
  static core::HybridNetwork* net_;
};

scenario::Scenario* RouteBatchFixture::sc_ = nullptr;
core::HybridNetwork* RouteBatchFixture::net_ = nullptr;

TEST_F(RouteBatchFixture, HybridRouterBatchIsIdenticalToSerialAtAnyThreadCount) {
  const auto pairs = randomPairs(net_->ldel().numNodes(), 9, 48);
  const Router& router = net_->router();

  std::vector<RouteResult> serial;
  serial.reserve(pairs.size());
  for (const auto& p : pairs) serial.push_back(router.route(p.source, p.target));

  for (const int threads : {1, 2, 8}) {
    const auto batch = router.routeBatch(pairs, threads);
    ASSERT_EQ(batch.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameResult(batch[i], serial[i]))
          << "threads=" << threads << " pair=" << i << " (" << pairs[i].source
          << " -> " << pairs[i].target << ")";
    }
  }
}

TEST_F(RouteBatchFixture, VisibilityOverlayRouterBatchMatchesSerial) {
  // The incremental overlay serving path under concurrency.
  const auto router = net_->makeRouter({SiteMode::HullNodes, EdgeMode::Visibility, true});
  const auto pairs = randomPairs(net_->ldel().numNodes(), 21, 32);

  std::vector<RouteResult> serial;
  for (const auto& p : pairs) serial.push_back(router->route(p.source, p.target));
  const auto batch = router->routeBatch(pairs, 8);
  ASSERT_EQ(batch.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_TRUE(sameResult(batch[i], serial[i])) << "pair=" << i;
  }
}

TEST_F(RouteBatchFixture, HubLabelOverlayRouterBatchMatchesSerial) {
  // Same contract as the visibility-overlay batch test, but with the
  // site-pair table served from hub labels: the workspace-per-thread
  // query path must stay deterministic across thread counts.
  HybridOptions opts{SiteMode::HullNodes, EdgeMode::Visibility, true};
  opts.table = TableMode::HubLabels;
  const auto router = net_->makeRouter(opts);
  ASSERT_TRUE(router->overlay().usesHubLabels());
  const auto pairs = randomPairs(net_->ldel().numNodes(), 27, 32);

  std::vector<RouteResult> serial;
  for (const auto& p : pairs) serial.push_back(router->route(p.source, p.target));
  for (const int threads : {1, 2, 8}) {
    const auto batch = router->routeBatch(pairs, threads);
    ASSERT_EQ(batch.size(), serial.size()) << "threads=" << threads;
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameResult(batch[i], serial[i])) << "threads=" << threads << " pair=" << i;
    }
  }

  // And the label backend agrees with the dense backend route for route.
  HybridOptions denseOpts{SiteMode::HullNodes, EdgeMode::Visibility, true};
  denseOpts.table = TableMode::Dense;
  const auto denseRouter = net_->makeRouter(denseOpts);
  for (const auto& p : pairs) {
    const auto a = router->route(p.source, p.target);
    const auto b = denseRouter->route(p.source, p.target);
    EXPECT_EQ(a.delivered, b.delivered) << p.source << " -> " << p.target;
    EXPECT_EQ(a.protocolCase, b.protocolCase) << p.source << " -> " << p.target;
  }
}

TEST_F(RouteBatchFixture, BaselineRouterBatchMatchesSerial) {
  const GreedyRouter greedy(net_->udg());
  const auto pairs = randomPairs(net_->udg().numNodes(), 4, 40);

  std::vector<RouteResult> serial;
  for (const auto& p : pairs) serial.push_back(greedy.route(p.source, p.target));
  for (const int threads : {2, 8}) {
    const auto batch = greedy.routeBatch(pairs, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameResult(batch[i], serial[i])) << "pair=" << i;
    }
  }
}

TEST_F(RouteBatchFixture, NetworkFacadeBatchAndEdgeCases) {
  EXPECT_TRUE(net_->routeBatch({}, 4).empty());

  const std::vector<RoutePair> pairs{{0, 0}, {0, 1}};
  const auto res = net_->routeBatch(pairs, 2);
  ASSERT_EQ(res.size(), 2u);
  EXPECT_TRUE(sameResult(res[0], net_->route(0, 0)));
  EXPECT_TRUE(sameResult(res[1], net_->route(0, 1)));
}

}  // namespace
}  // namespace hybrid::routing
