#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "protocols/incremental.hpp"
#include "routing/stateless_router.hpp"
#include "scenario/churn.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "serve/route_service.hpp"
#include "testkit/oracles.hpp"

namespace hybrid {
namespace {

scenario::Scenario makeDeployment(unsigned seed, double side = 10.0) {
  scenario::ScenarioParams p;
  p.width = p.height = side;
  p.seed = seed;
  p.obstacles.push_back(
      scenario::regularPolygonObstacle({side / 2.0, side / 2.0}, side / 5.0, 6));
  return scenario::makeScenario(p);
}

std::vector<routing::RoutePair> somePairs(const serve::RouteService& service,
                                          std::size_t want = 12) {
  const auto snap = service.snapshot();
  const int n = static_cast<int>(snap->scenario.points.size());
  std::vector<routing::RoutePair> pairs;
  for (std::size_t i = 0; pairs.size() < want && static_cast<int>(i) + 1 < n; i += 3) {
    pairs.push_back({static_cast<int>(i), n - 1 - static_cast<int>(i)});
  }
  return pairs;
}

bool sameRoute(const routing::RouteResult& a, const routing::RouteResult& b) {
  return a.path == b.path && a.delivered == b.delivered && a.blockedHole == b.blockedHole &&
         a.fallbacks == b.fallbacks && a.bayExtremePoints == b.bayExtremePoints &&
         a.protocolCase == b.protocolCase;
}

/// The service's published epoch must answer exactly like a from-scratch
/// build over the same point set — the contract every test leans on.
void expectMatchesFreshBuild(const serve::RouteService& service) {
  const auto snap = service.snapshot();
  const core::HybridNetwork fresh(snap->scenario.points, service.options().ldel,
                                  service.options().router, nullptr);
  const auto pairs = somePairs(service);
  ASSERT_FALSE(pairs.empty());
  const auto served = service.routeBatch(pairs, 2);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_TRUE(sameRoute(served[i], fresh.route(pairs[i].source, pairs[i].target)))
        << "pair " << i << " diverges at epoch " << snap->epoch;
  }
}

TEST(RouteService, ServesInitialEpoch) {
  serve::RouteService service(makeDeployment(71));
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.liveSnapshots(), 1);
  const auto snap = service.snapshot();
  EXPECT_EQ(snap->epoch, 0u);
  EXPECT_EQ(snap->build, serve::EpochBuild::Full);
  expectMatchesFreshBuild(service);
}

TEST(RouteService, EmptyEpochIsReusedRepublish) {
  serve::RouteService service(makeDeployment(72));
  const auto before = service.snapshot();
  const auto stats = service.applyUpdates();
  EXPECT_EQ(stats.epoch, 1u);
  EXPECT_EQ(stats.build, serve::EpochBuild::Reused);
  const auto after = service.snapshot();
  EXPECT_EQ(after->epoch, 1u);
  // Same network object republished, not a rebuild of equal content.
  EXPECT_EQ(after->net.get(), before->net.get());
  EXPECT_EQ(service.reusedEpochs(), 1u);
}

TEST(RouteService, RejectsInvalidUpdates) {
  serve::RouteService service(makeDeployment(73));
  const auto before = service.snapshot();
  const int n = static_cast<int>(before->scenario.points.size());

  scenario::Update staleLeave;
  staleLeave.kind = scenario::UpdateKind::Leave;
  staleLeave.node = n + 100;
  scenario::Update badMove;
  badMove.kind = scenario::UpdateKind::Move;
  badMove.node = -1;
  scenario::Update badObstacle;
  badObstacle.kind = scenario::UpdateKind::ObstacleAdd;
  badObstacle.poly = {{0.0, 0.0}, {1.0, 1.0}};  // Degenerate: two vertices.
  scenario::Update staleObstacleRemove;
  staleObstacleRemove.kind = scenario::UpdateKind::ObstacleRemove;
  staleObstacleRemove.obstacle = 99;
  service.enqueue({staleLeave, badMove, badObstacle, staleObstacleRemove});

  const auto stats = service.applyUpdates();
  EXPECT_EQ(stats.applied, 0);
  EXPECT_EQ(stats.rejected, 4);
  EXPECT_EQ(stats.build, serve::EpochBuild::Reused);
  EXPECT_EQ(service.snapshot()->net.get(), before->net.get());
}

TEST(RouteService, ObstacleOutsideDeploymentReusesNetwork) {
  serve::RouteService service(makeDeployment(74));
  scenario::Update add;
  add.kind = scenario::UpdateKind::ObstacleAdd;
  add.poly = {{-5.0, -5.0}, {-4.0, -5.0}, {-4.0, -4.0}, {-5.0, -4.0}};
  service.enqueue(add);
  const auto stats = service.applyUpdates();
  EXPECT_EQ(stats.applied, 1);
  EXPECT_EQ(stats.evicted, 0);
  // The obstacle covers no node, so the topology — the only network build
  // input — is unchanged: the scenario records it, the network is reused.
  EXPECT_EQ(stats.build, serve::EpochBuild::Reused);
  EXPECT_EQ(service.snapshot()->scenario.obstacles.size(), 2u);
}

TEST(RouteService, TinyInteriorMoveAdoptsOverlaySlab) {
  serve::RouteService service(makeDeployment(75));
  const auto before = service.snapshot();
  const auto& pts = before->scenario.points;
  // Pick a node on no boundary ring (hole rings and the outer boundary
  // both feed the overlay plan, so only strictly interior churn can leave
  // the plan — and with it the slab — unchanged).
  std::vector<bool> onRing(pts.size(), false);
  for (const auto& ring : protocols::boundaryRings(*before->net)) {
    for (int v : ring) onRing[static_cast<std::size_t>(v)] = true;
  }
  int interior = -1;
  for (std::size_t i = 0; i < onRing.size(); ++i) {
    if (!onRing[i]) {
      interior = static_cast<int>(i);
      break;
    }
  }
  ASSERT_GE(interior, 0);
  scenario::Update move;
  move.kind = scenario::UpdateKind::Move;
  move.node = interior;
  move.pos = {pts[static_cast<std::size_t>(interior)].x + 1e-7,
              pts[static_cast<std::size_t>(interior)].y};
  service.enqueue(move);

  const auto stats = service.applyUpdates();
  ASSERT_EQ(stats.applied, 1);
  // The point set changed, so the network was rebuilt — but the overlay
  // build inputs (hole rings, their positions) did not, so the slab was
  // adopted from the previous epoch instead of being rebuilt.
  EXPECT_EQ(stats.build, serve::EpochBuild::Incremental);
  const auto after = service.snapshot();
  EXPECT_NE(after->net.get(), before->net.get());
  EXPECT_EQ(after->net->router().overlayPtr().get(), before->net->router().overlayPtr().get());
  EXPECT_EQ(stats.changedRings, 0);
  expectMatchesFreshBuild(service);
}

TEST(RouteService, JoinRebuildsAndMatchesFreshBuild) {
  serve::RouteService service(makeDeployment(76));
  const auto before = service.snapshot();
  const geom::Vec2 anchor = before->scenario.points.front();
  scenario::Update join;
  join.kind = scenario::UpdateKind::Join;
  join.pos = {anchor.x + 0.11, anchor.y + 0.07};
  service.enqueue(join);
  const auto stats = service.applyUpdates();
  if (stats.applied == 1) {
    EXPECT_NE(stats.build, serve::EpochBuild::Reused);
    EXPECT_EQ(stats.nodes, before->scenario.points.size() + 1);
  } else {
    // The jittered spot collided with an existing node or an obstacle;
    // rejection must leave the epoch as a clean republish.
    EXPECT_EQ(stats.build, serve::EpochBuild::Reused);
  }
  expectMatchesFreshBuild(service);
}

TEST(RouteService, ObstacleAddEvictsCoveredNodes) {
  serve::RouteService service(makeDeployment(77));
  const auto before = service.snapshot();
  scenario::Update add;
  add.kind = scenario::UpdateKind::ObstacleAdd;
  add.poly = {{1.0, 1.0}, {3.0, 1.0}, {3.0, 3.0}, {1.0, 3.0}};
  service.enqueue(add);
  const auto stats = service.applyUpdates();
  ASSERT_EQ(stats.applied, 1);
  EXPECT_GT(stats.evicted, 0);
  EXPECT_EQ(stats.build, serve::EpochBuild::Full);
  const auto after = service.snapshot();
  EXPECT_LT(after->scenario.points.size(), before->scenario.points.size());
  const geom::Polygon poly(add.poly);
  for (const auto& p : after->scenario.points) {
    EXPECT_FALSE(poly.contains(p));
  }
  expectMatchesFreshBuild(service);
}

TEST(RouteService, SnapshotRetiresWhenLastReaderDrains) {
  serve::RouteService service(makeDeployment(78));
  auto pinned = service.snapshot();
  std::weak_ptr<const serve::Snapshot> watch = pinned;

  scenario::Update leave;
  leave.kind = scenario::UpdateKind::Leave;
  leave.node = 0;
  service.enqueue(leave);
  service.applyUpdates();

  // The reader still pins epoch 0 after the swap; the epoch retires the
  // moment the pin drops, with no action from the service.
  EXPECT_EQ(service.liveSnapshots(), 2);
  EXPECT_FALSE(watch.expired());
  pinned.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_EQ(service.liveSnapshots(), 1);
}

TEST(RouteService, FaultStreamIsDeterministic) {
  const auto sc = makeDeployment(79);
  serve::ServiceOptions opts;
  opts.updateFaults.seed = 99;
  opts.updateFaults.adHocDrop = 0.2;
  opts.updateFaults.adHocDuplicate = 0.2;
  opts.updateFaults.adHocDelay = 0.2;

  scenario::ChurnParams churn;
  churn.seed = 5;
  churn.epochs = 5;
  const auto trace = scenario::makeChurnTrace(sc, churn);

  struct Outcome {
    serve::StreamStats stream;
    std::vector<geom::Vec2> points;
    std::uint64_t epoch = 0;
  };
  const auto run = [&] {
    serve::RouteService service(sc, opts);
    for (const auto& batch : trace) {
      service.enqueue(batch);
      service.applyUpdates();
    }
    while (service.drainOnce()) {
    }
    return Outcome{service.streamStats(), service.snapshot()->scenario.points,
                   service.epoch()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.stream, b.stream);
  EXPECT_GT(a.stream.dropped, 0u);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.epoch, b.epoch);
}

TEST(RouteService, SharedLabelSlabAcrossReplicas) {
  const auto sc = makeDeployment(80);
  const core::HybridNetwork net(sc.points);
  routing::StatelessRouter built(net.ldel(), 1);
  // A second replica adopts the first one's slab: same storage, same
  // answers — the snapshot-ownership model for sharded label serving.
  routing::StatelessRouter replica(built.labelsPtr());
  EXPECT_EQ(replica.labelsPtr().get(), built.labelsPtr().get());
  const int n = static_cast<int>(sc.points.size());
  for (int i = 0; i + 1 < n && i < 20; i += 5) {
    const auto a = built.route(i, n - 1 - i);
    const auto b = replica.route(i, n - 1 - i);
    EXPECT_TRUE(sameRoute(a, b)) << "pair " << i;
  }
}

TEST(ChurnServing, ConcurrentReadersUnderChurn) {
  serve::RouteService service(makeDeployment(81));

  scenario::ChurnParams churn;
  churn.seed = 17;
  churn.epochs = 4;
  churn.updatesPerEpoch = 4;
  const auto trace = scenario::makeChurnTrace(service.snapshot()->scenario, churn);

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&service, &stop] {
      // Node ids below minNodes always exist (removals that would cross
      // the floor are rejected), so these pairs stay valid whichever
      // epoch the service happens to serve them against.
      const std::vector<routing::RoutePair> fixed{{0, 7}, {1, 6}, {2, 5}};
      while (!stop.load(std::memory_order_relaxed)) {
        const auto viaService = service.routeBatch(fixed, 2);
        EXPECT_EQ(viaService.size(), fixed.size());
        // The pin-then-serve pattern: pairs derived from a pinned epoch
        // must be routed on that epoch's network, not the service's
        // current one (a swap in between may shrink the id space).
        const auto snap = service.snapshot();
        EXPECT_GE(snap->scenario.points.size(), service.options().minNodes);
        const int n = static_cast<int>(snap->scenario.points.size());
        const std::vector<routing::RoutePair> pinnedPairs{{0, n - 1}, {n / 2, n - 2}};
        const auto viaPin = snap->net->routeBatch(pinnedPairs, 1);
        EXPECT_EQ(viaPin.size(), pinnedPairs.size());
      }
    });
  }
  for (const auto& batch : trace) {
    service.enqueue(batch);
    service.applyUpdates();
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();

  EXPECT_EQ(service.epoch(), static_cast<std::uint64_t>(churn.epochs));
  EXPECT_EQ(service.history().size(), static_cast<std::size_t>(churn.epochs));
  expectMatchesFreshBuild(service);
}

TEST(ChurnServing, OracleIsRegisteredAndPasses) {
  const auto* oracle = testkit::findOracle("churn_serving");
  ASSERT_NE(oracle, nullptr);
  testkit::CaseContext ctx(makeDeployment(82, 7.0), 3, 2);
  const auto verdict = oracle->check(ctx);
  EXPECT_TRUE(verdict.ok) << verdict.failure;
  EXPECT_FALSE(verdict.skipped);
}

}  // namespace
}  // namespace hybrid
