#include <gtest/gtest.h>

#include <random>

#include "delaunay/ldel.hpp"
#include "protocols/routing_sim.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

TEST(ParallelLdel, ThreadCountDoesNotChangeTheGraph) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(600, 81));
  delaunay::LDelOptions serial;
  serial.threads = 1;
  delaunay::LDelOptions parallel;
  parallel.threads = 4;
  const auto a = delaunay::buildLocalizedDelaunay(sc.points, serial);
  const auto b = delaunay::buildLocalizedDelaunay(sc.points, parallel);
  EXPECT_EQ(a.graph.edges(), b.graph.edges());
  EXPECT_EQ(a.triangles, b.triangles);
  EXPECT_EQ(a.gabrielEdges, b.gabrielEdges);
}

TEST(RoutingSim, TransmissionMatchesOracleRoute) {
  scenario::ScenarioParams p;
  p.width = p.height = 16.0;
  p.seed = 83;
  p.obstacles.push_back(scenario::regularPolygonObstacle({8, 8}, 2.5, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  sim::Simulator simulator(net.udg());

  std::mt19937 rng(2);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 25; ++it) {
    const int s = pick(rng);
    int t = pick(rng);
    if (t == s) t = (t + 1) % static_cast<int>(sc.points.size());
    const auto oracle = net.route(s, t);
    const auto tx = protocols::simulateTransmission(net, simulator, s, t);
    ASSERT_TRUE(tx.delivered) << s << " -> " << t;
    EXPECT_EQ(tx.adHocHops, static_cast<int>(oracle.hops()));
    // Position handshake (2 rounds) + one round per ad hoc hop.
    EXPECT_EQ(tx.rounds, tx.adHocHops + 2);
    EXPECT_EQ(tx.longRangeMessages, 2);
    EXPECT_EQ(tx.adHocMessages, tx.adHocHops);
  }
}

TEST(RoutingSim, AdjacentPairCostsThreeRounds) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(150, 85));
  core::HybridNetwork net(sc.points);
  sim::Simulator simulator(net.udg());
  const int s = 0;
  const auto nbrs = net.ldel().neighbors(s);
  ASSERT_FALSE(nbrs.empty());
  const auto tx = protocols::simulateTransmission(net, simulator, s, nbrs[0]);
  EXPECT_TRUE(tx.delivered);
  EXPECT_EQ(tx.adHocHops, 1);
  EXPECT_EQ(tx.rounds, 3);
}

}  // namespace
}  // namespace hybrid
