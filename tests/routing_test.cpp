#include <gtest/gtest.h>

#include <random>
#include <set>

#include "core/hybrid_network.hpp"
#include "routing/baselines.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid {
namespace {

int nearestNode(const graph::GeometricGraph& g, geom::Vec2 p) {
  int best = 0;
  double bestD = 1e18;
  for (int v = 0; v < static_cast<int>(g.numNodes()); ++v) {
    const double d = geom::dist2(g.position(v), p);
    if (d < bestD) {
      bestD = d;
      best = v;
    }
  }
  return best;
}

// Every hop of a route must be a real communication (LDel) edge, and a
// delivered route must end at the target.
void checkRouteValid(const core::HybridNetwork& net, const routing::RouteResult& r,
                     int s, int t) {
  ASSERT_FALSE(r.path.empty());
  EXPECT_EQ(r.path.front(), s);
  for (std::size_t i = 0; i + 1 < r.path.size(); ++i) {
    EXPECT_TRUE(net.ldel().hasEdge(r.path[i], r.path[i + 1]))
        << "hop " << r.path[i] << " -> " << r.path[i + 1] << " is not an LDel edge";
  }
  if (r.delivered) EXPECT_EQ(r.path.back(), t);
}

class RoutingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    scenario::ScenarioParams p;
    p.width = p.height = 20.0;
    p.seed = 33;
    p.obstacles.push_back(scenario::regularPolygonObstacle({10.0, 10.0}, 3.0, 6));
    sc_ = new scenario::Scenario(scenario::makeScenario(p));
    net_ = new core::HybridNetwork(sc_->points);
  }
  static void TearDownTestSuite() {
    delete net_;
    delete sc_;
    net_ = nullptr;
    sc_ = nullptr;
  }

  static scenario::Scenario* sc_;
  static core::HybridNetwork* net_;
};

scenario::Scenario* RoutingFixture::sc_ = nullptr;
core::HybridNetwork* RoutingFixture::net_ = nullptr;

TEST_F(RoutingFixture, ChewDeliversBetweenVisibleNodes) {
  const geom::VisibilityContext vis(net_->holes().holePolygons());
  routing::ChewRouter chew(net_->ldel(), net_->subdivision());
  std::mt19937 rng(1);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net_->ldel().numNodes()) - 1);
  int tested = 0;
  for (int it = 0; it < 2000 && tested < 80; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    if (s == t) continue;
    if (!vis.visible(net_->ldel().position(s), net_->ldel().position(t))) continue;
    const auto r = chew.route(s, t);
    if (!r.delivered && r.blockedHole < 0) continue;  // outer-face corner
    ++tested;
    ASSERT_TRUE(r.delivered) << s << " -> " << t;
    checkRouteValid(*net_, r, s, t);
    // Thm 2.11: at most 5.9 ||st||.
    const double ratio = net_->ldel().pathLength(r.path) /
                         geom::dist(net_->ldel().position(s), net_->ldel().position(t));
    EXPECT_LE(ratio, 5.9 + 1e-9);
  }
  EXPECT_GE(tested, 50);
}

TEST_F(RoutingFixture, ChewReportsTheBlockingHole) {
  // Pick s,t on opposite sides of the central hole.
  const int s = nearestNode(net_->ldel(), {4.0, 10.0});
  const int t = nearestNode(net_->ldel(), {16.0, 10.0});
  routing::ChewRouter chew(net_->ldel(), net_->subdivision());
  const auto r = chew.route(s, t);
  ASSERT_FALSE(r.delivered);
  ASSERT_GE(r.blockedHole, 0);
  const auto& hole = net_->holes().holes[static_cast<std::size_t>(r.blockedHole)];
  EXPECT_TRUE(hole.polygon.contains({10.0, 10.0})) << "blocked by the wrong hole";
  // The walk stops on the hole boundary.
  const auto& ring = hole.ring;
  EXPECT_NE(std::find(ring.begin(), ring.end(), r.path.back()), ring.end());
  checkRouteValid(*net_, r, s, t);
}

TEST_F(RoutingFixture, GreedyGetsStuckAtTheHoleButHybridDelivers) {
  const int s = nearestNode(net_->ldel(), {4.0, 10.0});
  const int t = nearestNode(net_->ldel(), {16.0, 10.0});
  routing::GreedyRouter greedy(net_->ldel());
  const auto rg = greedy.route(s, t);
  EXPECT_FALSE(rg.delivered);
  const auto rh = net_->router().route(s, t);
  EXPECT_TRUE(rh.delivered);
  checkRouteValid(*net_, rh, s, t);
}

TEST_F(RoutingFixture, AllRoutersProduceValidPaths) {
  routing::GreedyRouter greedy(net_->ldel());
  routing::CompassRouter compass(net_->ldel());
  routing::FaceGreedyRouter face(net_->ldel(), net_->subdivision(), net_->holes());
  auto hullVis = net_->makeRouter(
      {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
  auto bndDel = net_->makeRouter(
      {routing::SiteMode::AllHoleNodes, routing::EdgeMode::Delaunay, true});

  std::mt19937 rng(17);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net_->ldel().numNodes()) - 1);
  routing::Router* routers[] = {&greedy, &compass, &face, hullVis.get(), bndDel.get(),
                                &net_->router()};
  for (int it = 0; it < 30; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    for (auto* router : routers) {
      const auto r = router->route(s, t);
      checkRouteValid(*net_, r, s, t);
    }
  }
}

TEST_F(RoutingFixture, FaceGreedyAlwaysDelivers) {
  routing::FaceGreedyRouter face(net_->ldel(), net_->subdivision(), net_->holes());
  std::mt19937 rng(23);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(net_->ldel().numNodes()) - 1);
  for (int it = 0; it < 120; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = face.route(s, t);
    EXPECT_TRUE(r.delivered) << s << " -> " << t;
  }
}

TEST_F(RoutingFixture, OverlayWaypointLegsAreHoleFreeOrBackbone) {
  const auto& overlay = net_->router().overlay();
  const geom::VisibilityContext vis(net_->holes().holePolygons());
  // Backbone legs (consecutive hull nodes of one hole) are exempt: they
  // are kept unconditionally (see OverlayGraph::buildQueryGraph).
  std::set<std::pair<graph::NodeId, graph::NodeId>> backbone;
  for (const auto& a : net_->abstractions()) {
    for (std::size_t i = 0; i < a.hullNodes.size(); ++i) {
      const auto u = a.hullNodes[i];
      const auto v = a.hullNodes[(i + 1) % a.hullNodes.size()];
      backbone.insert({u, v});
      backbone.insert({v, u});
    }
  }
  std::mt19937 rng(29);
  std::uniform_real_distribution<double> d(1.0, 19.0);
  for (int it = 0; it < 40; ++it) {
    geom::Vec2 from{d(rng), d(rng)};
    geom::Vec2 to{d(rng), d(rng)};
    bool inHole = false;
    for (const auto& h : net_->holes().holes) {
      inHole = inHole || h.polygon.contains(from) || h.polygon.contains(to);
    }
    if (inHole) continue;
    const auto wp = overlay.waypoints(from, to);
    if (!wp) continue;
    geom::Vec2 prev = from;
    graph::NodeId prevId = -1;
    for (graph::NodeId w : *wp) {
      const bool isBackbone = prevId >= 0 && backbone.contains({prevId, w});
      EXPECT_TRUE(isBackbone || vis.visible(prev, net_->ldel().position(w)));
      prev = net_->ldel().position(w);
      prevId = w;
    }
    EXPECT_TRUE(vis.visible(prev, to));  // endpoint legs are vis-filtered
  }
}

TEST_F(RoutingFixture, RouteToSelfIsTrivial) {
  const auto r = net_->router().route(5, 5);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.hops(), 0u);
}

TEST_F(RoutingFixture, AdjacentNodesOneHop) {
  const int s = 10;
  const auto nbrs = net_->ldel().neighbors(s);
  ASSERT_FALSE(nbrs.empty());
  const auto r = net_->router().route(s, nbrs[0]);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.hops(), 1u);
}

TEST(RoutingBay, SameBayPairsUseCase5) {
  // U-shaped hole: pairs inside the bay exercise §4.4.
  scenario::ScenarioParams p;
  const double side = 22.0;
  p.width = p.height = side;
  p.seed = 37;
  p.obstacles.push_back(scenario::uShapeObstacle({side / 2, side / 2}, 10.0, 8.5, 1.4));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);

  auto& router = net.router();
  const int s = nearestNode(net.ldel(), {side / 2 - 3.0, side / 2 + 1.0});
  const int t = nearestNode(net.ldel(), {side / 2 + 3.0, side / 2 + 1.0});
  const auto locS = router.locate(net.ldel().position(s));
  const auto locT = router.locate(net.ldel().position(t));
  ASSERT_TRUE(locS.has_value());
  ASSERT_TRUE(locT.has_value());
  EXPECT_EQ(locS->abstraction, locT->abstraction);

  const auto r = router.route(s, t);
  EXPECT_TRUE(r.delivered);
  const double st = net.stretch(r, s, t);
  EXPECT_LE(st, (2.0 + r.bayExtremePoints) * 5.9 + 1e-9);  // Lemma 4.19
}

TEST(RoutingBay, InsideToOutsideAndBack) {
  scenario::ScenarioParams p;
  const double side = 22.0;
  p.width = p.height = side;
  p.seed = 39;
  p.obstacles.push_back(scenario::uShapeObstacle({side / 2, side / 2}, 10.0, 8.5, 1.4));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);
  auto& router = net.router();

  const int inside = nearestNode(net.ldel(), {side / 2, side / 2 + 0.5});
  const int outside = nearestNode(net.ldel(), {2.0, 2.0});
  ASSERT_TRUE(router.locate(net.ldel().position(inside)).has_value());
  ASSERT_FALSE(router.locate(net.ldel().position(outside)).has_value());

  const auto rOut = router.route(inside, outside);
  EXPECT_TRUE(rOut.delivered);
  const auto rIn = router.route(outside, inside);
  EXPECT_TRUE(rIn.delivered);
  EXPECT_LT(net.stretch(rOut, inside, outside), 8.0);
  EXPECT_LT(net.stretch(rIn, outside, inside), 8.0);
}

TEST(RoutingConfig, RouterNamesReflectConfiguration) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(200, 41));
  core::HybridNetwork net(sc.points);
  EXPECT_EQ(net.router().name(), "hybrid-hull-delaunay");
  auto r1 = net.makeRouter({routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
  EXPECT_EQ(r1->name(), "hybrid-hull-visibility");
  auto r2 =
      net.makeRouter({routing::SiteMode::AllHoleNodes, routing::EdgeMode::Delaunay, true});
  EXPECT_EQ(r2->name(), "hybrid-boundary-delaunay");
}

TEST(RoutingNoHoles, PlainDeploymentNeedsNoOverlay) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(400, 43));
  core::HybridNetwork net(sc.points);
  std::mt19937 rng(5);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  for (int it = 0; it < 50; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = net.route(s, t);
    EXPECT_TRUE(r.delivered);
    EXPECT_LE(net.stretch(r, s, t), 5.9 + 1e-9);
  }
}

}  // namespace
}  // namespace hybrid
