#include <gtest/gtest.h>

#include <random>
#include <set>

#include "delaunay/udg.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::scenario {
namespace {

TEST(Shapes, RectangleAndPolygonAreValid) {
  const auto rect = rectangleObstacle({1, 2}, {4, 5});
  EXPECT_EQ(rect.size(), 4u);
  EXPECT_TRUE(rect.isConvex());
  EXPECT_TRUE(rect.isCounterClockwise());
  EXPECT_DOUBLE_EQ(rect.area(), 9.0);

  for (int k = 3; k <= 9; ++k) {
    const auto poly = regularPolygonObstacle({0, 0}, 2.0, k, 0.3);
    EXPECT_EQ(poly.size(), static_cast<std::size_t>(k));
    EXPECT_TRUE(poly.isConvex());
    EXPECT_TRUE(poly.isCounterClockwise());
    EXPECT_TRUE(poly.containsStrict({0, 0}));
  }
}

TEST(Shapes, UShapeIsSimpleConcaveAndOpensUp) {
  const auto u = uShapeObstacle({0, 0}, 6.0, 5.0, 1.0);
  EXPECT_FALSE(u.isConvex());
  EXPECT_TRUE(u.isCounterClockwise());
  // Bottom wall is solid, slot is open.
  EXPECT_TRUE(u.containsStrict({0.0, -2.2}));
  EXPECT_FALSE(u.containsStrict({0.0, 0.0}));   // inside the slot
  EXPECT_TRUE(u.containsStrict({2.7, 0.0}));    // right wall
  EXPECT_TRUE(u.containsStrict({-2.7, 0.0}));   // left wall
  // No self intersections.
  for (std::size_t i = 0; i < u.size(); ++i) {
    for (std::size_t j = i + 1; j < u.size(); ++j) {
      if ((i + 1) % u.size() == j || (j + 1) % u.size() == i) continue;
      EXPECT_FALSE(geom::segmentsCrossProperly(u.edge(i), u.edge(j)));
    }
  }
}

TEST(Shapes, CombGeometry) {
  const int teeth = 4;
  const auto comb = combObstacle({0, 0}, teeth, 2.0, 3.0, 8.0, 1.5);
  EXPECT_EQ(comb.size(), static_cast<std::size_t>(2 + 4 * teeth - 2));
  EXPECT_TRUE(comb.isCounterClockwise());
  EXPECT_FALSE(comb.isConvex());
  // Tooth interior vs gap.
  EXPECT_TRUE(comb.containsStrict({1.0, 5.0}));    // first tooth
  EXPECT_FALSE(comb.containsStrict({3.5, 5.0}));   // first gap
  EXPECT_TRUE(comb.containsStrict({6.0, 5.0}));    // second tooth
  EXPECT_TRUE(comb.containsStrict({3.5, 0.75}));   // the bar below the gap
  // No self intersections.
  for (std::size_t i = 0; i < comb.size(); ++i) {
    for (std::size_t j = i + 1; j < comb.size(); ++j) {
      if ((i + 1) % comb.size() == j || (j + 1) % comb.size() == i) continue;
      EXPECT_FALSE(geom::segmentsCrossProperly(comb.edge(i), comb.edge(j)));
    }
  }
}

TEST(Shapes, CityBlocksLayout) {
  const auto blocks = cityBlocks({0, 0}, 2, 3, 4.0, 3.0, 1.5);
  EXPECT_EQ(blocks.size(), 6u);
  // Blocks are pairwise disjoint.
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (std::size_t j = i + 1; j < blocks.size(); ++j) {
      EXPECT_FALSE(blocks[i].boundingBox().intersects(blocks[j].boundingBox()));
    }
  }
}

TEST(Generator, PointsAvoidObstaclesWithClearance) {
  ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 2;
  p.clearance = 0.2;
  p.obstacles.push_back(rectangleObstacle({5, 5}, {9, 9}));
  const auto sc = makeScenario(p);
  ASSERT_GT(sc.points.size(), 100u);
  for (const auto& pt : sc.points) {
    EXPECT_FALSE(p.obstacles[0].contains(pt));
    for (std::size_t e = 0; e < p.obstacles[0].size(); ++e) {
      EXPECT_GE(geom::pointSegmentDistance(pt, p.obstacles[0].edge(e)), p.clearance);
    }
  }
}

TEST(Generator, ConnectedAndDuplicateFree) {
  ScenarioParams p;
  p.width = p.height = 12.0;
  p.seed = 3;
  p.obstacles.push_back(regularPolygonObstacle({6, 6}, 2.0, 5));
  const auto sc = makeScenario(p);
  std::set<std::pair<double, double>> seen;
  for (const auto& pt : sc.points) EXPECT_TRUE(seen.insert({pt.x, pt.y}).second);
  EXPECT_TRUE(delaunay::buildUnitDiskGraph(sc.points, p.radius).isConnected());
}

TEST(Generator, DeterministicPerSeed) {
  ScenarioParams p;
  p.width = p.height = 10.0;
  p.seed = 9;
  const auto a = makeScenario(p);
  const auto b = makeScenario(p);
  EXPECT_EQ(a.points, b.points);
  p.seed = 10;
  const auto c = makeScenario(p);
  EXPECT_NE(a.points, c.points);
}

TEST(Generator, ParamsForNodeCountLandsNearTarget) {
  for (const std::size_t n : {300u, 1000u, 3000u}) {
    const auto sc = makeScenario(paramsForNodeCount(n, 4));
    EXPECT_GT(sc.points.size(), n * 7 / 10);
    EXPECT_LT(sc.points.size(), n * 13 / 10);
  }
}

TEST(Mobility, StepsStayLegal) {
  ScenarioParams p;
  p.width = p.height = 10.0;
  p.seed = 6;
  p.obstacles.push_back(rectangleObstacle({4, 4}, {6, 6}));
  auto sc = makeScenario(p);
  std::mt19937 rng(1);
  for (int step = 0; step < 5; ++step) {
    const int moved = stepMobility(sc.points, sc.obstacles, p.width, p.height, 0.2, rng);
    EXPECT_GT(moved, 0);
    for (const auto& pt : sc.points) {
      EXPECT_FALSE(sc.obstacles[0].contains(pt));
      EXPECT_GE(pt.x, 0.0);
      EXPECT_LE(pt.x, p.width);
      EXPECT_GE(pt.y, 0.0);
      EXPECT_LE(pt.y, p.height);
    }
  }
}

}  // namespace
}  // namespace hybrid::scenario
