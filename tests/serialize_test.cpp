#include <gtest/gtest.h>

#include <sstream>

#include "io/serialize.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::io {
namespace {

TEST(Serialize, RoundTripPreservesEverything) {
  scenario::ScenarioParams p;
  p.width = p.height = 8.0;
  p.seed = 3;
  p.obstacles.push_back(scenario::rectangleObstacle({3, 3}, {5, 5}));
  p.obstacles.push_back(scenario::regularPolygonObstacle({1.5, 6.0}, 0.8, 5));
  const auto sc = scenario::makeScenario(p);

  std::stringstream ss;
  writeScenario(ss, sc);
  const auto back = readScenario(ss);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->radius, sc.radius);
  EXPECT_EQ(back->points, sc.points);  // exact: full-precision output
  ASSERT_EQ(back->obstacles.size(), sc.obstacles.size());
  for (std::size_t i = 0; i < sc.obstacles.size(); ++i) {
    EXPECT_EQ(back->obstacles[i].vertices(), sc.obstacles[i].vertices());
  }
}

TEST(Serialize, AcceptsCommentsAndBlankLines) {
  std::stringstream ss(
      "# a comment\n"
      "scenario v1\n"
      "\n"
      "radius 2.5\n"
      "points 2\n"
      "0 0\n"
      "# interleaved comment\n"
      "1 1\n"
      "obstacle 3\n"
      "5 5\n6 5\n5 6\n");
  const auto sc = readScenario(ss);
  ASSERT_TRUE(sc.has_value());
  EXPECT_DOUBLE_EQ(sc->radius, 2.5);
  EXPECT_EQ(sc->points.size(), 2u);
  EXPECT_EQ(sc->obstacles.size(), 1u);
}

TEST(Serialize, RejectsMalformedInput) {
  {
    std::stringstream ss("not a scenario\n");
    EXPECT_FALSE(readScenario(ss).has_value());
  }
  {
    std::stringstream ss("scenario v1\npoints 3\n0 0\n1 1\n");  // truncated
    EXPECT_FALSE(readScenario(ss).has_value());
  }
  {
    std::stringstream ss("scenario v1\nradius -1\npoints 1\n0 0\n");
    EXPECT_FALSE(readScenario(ss).has_value());
  }
  {
    std::stringstream ss("scenario v1\npoints 1\n0 0\nobstacle 2\n0 0\n1 1\n");
    EXPECT_FALSE(readScenario(ss).has_value());  // obstacle needs >= 3 vertices
  }
  {
    std::stringstream ss("scenario v1\nbogus 1\n");
    EXPECT_FALSE(readScenario(ss).has_value());
  }
  EXPECT_FALSE(loadScenario("/no/such/file.scn").has_value());
}

}  // namespace
}  // namespace hybrid::io
