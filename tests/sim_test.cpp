#include <gtest/gtest.h>

#include "delaunay/udg.hpp"
#include "sim/simulator.hpp"

namespace hybrid::sim {
namespace {

graph::GeometricGraph lineGraph(int n) {
  std::vector<geom::Vec2> pts;
  for (int i = 0; i < n; ++i) pts.push_back({static_cast<double>(i) * 0.9, 0.0});
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

// Floods a token down the line; node i learns it in round i.
class FloodProtocol : public Protocol {
 public:
  explicit FloodProtocol(int n) : arrival(static_cast<std::size_t>(n), -1) {}

  void onStart(Context& ctx) override {
    if (ctx.self() != 0) return;
    arrival[0] = 0;
    Message m;
    m.type = 1;
    ctx.sendAdHoc(1, std::move(m));
  }
  void onMessage(Context& ctx, const Message& m) override {
    auto& a = arrival[static_cast<std::size_t>(ctx.self())];
    if (a >= 0) return;
    a = ctx.round();
    if (ctx.self() + 1 < static_cast<int>(arrival.size())) {
      Message fwd;
      fwd.type = m.type;
      ctx.sendAdHoc(ctx.self() + 1, std::move(fwd));
    }
  }

  std::vector<int> arrival;
};

TEST(Simulator, SynchronousRoundSemantics) {
  const auto g = lineGraph(6);
  Simulator sim(g);
  FloodProtocol proto(6);
  const int rounds = sim.run(proto);
  // A message sent in round i arrives at the beginning of round i+1.
  for (int i = 0; i < 6; ++i) EXPECT_EQ(proto.arrival[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(rounds, 5);
}

TEST(Simulator, StatsCountMessagesAndWords) {
  const auto g = lineGraph(3);
  Simulator sim(g);
  class P : public Protocol {
   public:
    void onStart(Context& ctx) override {
      if (ctx.self() != 0) return;
      Message m;
      m.ints = {1, 2, 3};
      m.reals = {0.5};
      ctx.sendAdHoc(1, std::move(m));
    }
    void onMessage(Context&, const Message&) override {}
  } p;
  sim.run(p);
  EXPECT_EQ(sim.stats()[0].sentAdHoc, 1);
  EXPECT_EQ(sim.stats()[0].sentLongRange, 0);
  EXPECT_EQ(sim.stats()[0].sentWords, 5L);  // 3 ints + 1 real + header
  EXPECT_EQ(sim.stats()[1].receivedWords, 5L);
  EXPECT_EQ(sim.totalMessages(), 1L);
  sim.resetStats();
  EXPECT_EQ(sim.totalMessages(), 0L);
}

TEST(Simulator, KnowledgeStartsWithUdgNeighbors) {
  const auto g = lineGraph(4);
  const Simulator sim(g);
  EXPECT_TRUE(sim.knows(1, 0));
  EXPECT_TRUE(sim.knows(1, 2));
  EXPECT_FALSE(sim.knows(1, 3));
  EXPECT_TRUE(sim.knows(2, 2));  // every node knows itself
}

TEST(Simulator, IdIntroductionGrowsKnowledge) {
  const auto g = lineGraph(4);
  Simulator sim(g);
  class P : public Protocol {
   public:
    void onStart(Context& ctx) override {
      if (ctx.self() != 2) return;
      // Node 2 introduces its neighbor 3 to its neighbor 1.
      Message m;
      m.ids = {3};
      ctx.sendAdHoc(1, std::move(m));
    }
    void onMessage(Context& ctx, const Message&) override {
      if (ctx.self() == 1) {
        EXPECT_TRUE(ctx.knows(3));
        Message hello;
        hello.type = 42;
        ctx.sendLongRange(3, std::move(hello));
      } else if (ctx.self() == 3) {
        heard = true;
      }
    }
    bool heard = false;
  } p;
  sim.run(p);
  EXPECT_TRUE(p.heard);
  EXPECT_TRUE(sim.knows(1, 3));
  EXPECT_EQ(sim.stats()[1].sentLongRange, 1);
}

TEST(Simulator, MaxRoundsCapsRunawayProtocols) {
  const auto g = lineGraph(2);
  Simulator sim(g);
  class PingPong : public Protocol {
   public:
    void onStart(Context& ctx) override {
      if (ctx.self() == 0) ctx.sendAdHoc(1, Message{});
    }
    void onMessage(Context& ctx, const Message& m) override {
      ctx.sendAdHoc(m.from, Message{});
    }
  } p;
  EXPECT_EQ(sim.run(p, 50), 50);
}

TEST(Simulator, WantsMoreRoundsKeepsEmptyQueueAlive) {
  const auto g = lineGraph(2);
  Simulator sim(g);
  class Waiter : public Protocol {
   public:
    void onStart(Context&) override {}
    void onMessage(Context&, const Message&) override {}
    void onRoundEnd(Context& ctx) override {
      if (ctx.self() == 0) rounds = ctx.round();
    }
    bool wantsMoreRounds() const override { return rounds < 7; }
    int rounds = 0;
  } p;
  EXPECT_EQ(sim.run(p), 7);
}

TEST(Simulator, DeterministicDeliveryOrder) {
  // Messages to the same node from several senders arrive sorted by
  // sender id, making protocol runs reproducible.
  const auto g = delaunay::buildUnitDiskGraph(
      {{0.0, 0.0}, {0.5, 0.5}, {0.5, -0.5}, {-0.5, 0.5}}, 2.0);
  Simulator sim(g);
  class P : public Protocol {
   public:
    void onStart(Context& ctx) override {
      if (ctx.self() != 0) ctx.sendAdHoc(0, Message{});
    }
    void onMessage(Context& ctx, const Message& m) override {
      if (ctx.self() == 0) order.push_back(m.from);
    }
    std::vector<int> order;
  } p;
  sim.run(p);
  EXPECT_EQ(p.order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace hybrid::sim
