#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "delaunay/udg.hpp"
#include "protocols/reliable.hpp"
#include "sim/fault_plan.hpp"
#include "sim/simulator.hpp"

namespace hybrid::sim {
namespace {

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) {
      pts.push_back({0.9 * x, 0.9 * y});
    }
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

// Thread-compatible workload (strictly per-node state) that exercises every
// send path: ad hoc gossip with ID introductions in onStart/onRoundEnd, and
// long-range replies out of onMessage once IDs have been learned.
class MixProtocol : public Protocol {
 public:
  explicit MixProtocol(std::size_t n, int rounds)
      : rounds_(rounds), heard_(n, 0) {}

  void onStart(Context& ctx) override { gossip(ctx); }

  void onMessage(Context& ctx, const Message& m) override {
    auto& h = heard_[static_cast<std::size_t>(ctx.self())];
    ++h;
    if (m.type == kGossip && !m.ids.empty() && h % 3 == 0) {
      const int target = m.ids.back();
      if (target != ctx.self() && ctx.knows(target)) {
        Message reply;
        reply.type = kReply;
        reply.ints = {static_cast<std::int64_t>(ctx.self()), h};
        ctx.sendLongRange(target, std::move(reply));
      }
    }
  }

  void onRoundEnd(Context& ctx) override {
    if (ctx.round() < rounds_) gossip(ctx);
  }

  long totalHeard() const {
    long t = 0;
    for (long h : heard_) t += h;
    return t;
  }

 private:
  static constexpr int kGossip = 1;
  static constexpr int kReply = 2;

  void gossip(Context& ctx) {
    const auto nbs = ctx.udgNeighbors();
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      Message m;
      m.type = kGossip;
      m.ints = {static_cast<std::int64_t>(ctx.round())};
      m.reals = {ctx.position().x};
      // Introduce the next neighbor around: grows the knowledge graph so
      // long-range sends become possible.
      m.ids.push_back(nbs[(i + 1) % nbs.size()]);
      ctx.sendAdHoc(nbs[i], std::move(m));
    }
  }

  int rounds_;
  std::vector<long> heard_;
};

FaultConfig lossyConfig() {
  FaultConfig cfg;
  cfg.seed = 20260806;
  cfg.adHocDrop = 0.08;
  cfg.adHocDuplicate = 0.05;
  cfg.adHocDelay = 0.07;
  cfg.longRangeDrop = 0.10;
  cfg.maxDelayRounds = 3;
  cfg.crashes.push_back({5, 2, 6});
  cfg.crashes.push_back({17, 4, 9});
  cfg.blackouts.push_back({3, 5});
  return cfg;
}

struct RunResult {
  std::string trace;
  long totalMessages = 0;
  long totalDropped = 0;
  long heard = 0;
  int rounds = 0;
};

RunResult runAt(int threads, const FaultConfig* faults) {
  const auto g = gridGraph(6);
  Simulator sim = faults != nullptr ? Simulator(g, FaultPlan(*faults)) : Simulator(g);
  sim.setThreads(threads);
  // Keep the parallel machinery (and its TSan coverage) honest even on
  // small CI boxes where `threads` exceeds the hardware concurrency.
  sim.setAllowOversubscribe(true);
  sim.enableTrace();
  MixProtocol proto(g.numNodes(), 8);
  RunResult r;
  r.rounds = sim.run(proto, 200);
  r.trace = sim.trace();
  r.totalMessages = sim.totalMessages();
  r.totalDropped = sim.totalDropped();
  r.heard = proto.totalHeard();
  return r;
}

TEST(SimThreads, TraceIsByteIdenticalAcrossThreadCounts) {
  const RunResult serial = runAt(1, nullptr);
  ASSERT_FALSE(serial.trace.empty());
  for (const int t : {2, 8}) {
    const RunResult parallel = runAt(t, nullptr);
    EXPECT_EQ(parallel.trace, serial.trace) << "threads=" << t;
    EXPECT_EQ(parallel.totalMessages, serial.totalMessages);
    EXPECT_EQ(parallel.heard, serial.heard);
    EXPECT_EQ(parallel.rounds, serial.rounds);
  }
}

TEST(SimThreads, FaultScheduleIsByteIdenticalAcrossThreadCounts) {
  const FaultConfig cfg = lossyConfig();
  const RunResult serial = runAt(1, &cfg);
  ASSERT_FALSE(serial.trace.empty());
  EXPECT_GT(serial.totalDropped, 0);  // the plan actually bites
  for (const int t : {2, 8}) {
    const RunResult parallel = runAt(t, &cfg);
    EXPECT_EQ(parallel.trace, serial.trace) << "threads=" << t;
    EXPECT_EQ(parallel.totalMessages, serial.totalMessages);
    EXPECT_EQ(parallel.totalDropped, serial.totalDropped);
    EXPECT_EQ(parallel.heard, serial.heard);
    EXPECT_EQ(parallel.rounds, serial.rounds);
  }
}

TEST(SimThreads, ReliableTransportMatchesAcrossThreadCounts) {
  // The ARQ wrapper (SendTap + per-node transport state) under a lossy plan
  // is the most stateful client of the merge-time send path.
  const FaultConfig cfg = lossyConfig();
  std::string traces[3];
  long retrans[3];
  int i = 0;
  for (const int t : {1, 2, 8}) {
    const auto g = gridGraph(5);
    Simulator sim(g, FaultPlan(cfg));
    sim.setThreads(t);
    sim.setAllowOversubscribe(true);
    sim.enableTrace();
    MixProtocol inner(g.numNodes(), 5);
    protocols::ReliableProtocol rel(sim, inner, {});
    sim.run(rel, 400);
    traces[i] = sim.trace();
    retrans[i] = rel.stats().retransmissions;
    ++i;
  }
  ASSERT_FALSE(traces[0].empty());
  EXPECT_EQ(traces[1], traces[0]);
  EXPECT_EQ(traces[2], traces[0]);
  EXPECT_EQ(retrans[1], retrans[0]);
  EXPECT_EQ(retrans[2], retrans[0]);
}

TEST(SimThreads, OversubscribedRequestIsClampedToHardware) {
  const auto g = gridGraph(6);
  Simulator sim(g);
  sim.setThreads(1000);  // far beyond any box and beyond kMaxWorkers
  MixProtocol proto(g.numNodes(), 4);
  sim.run(proto, 100);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  EXPECT_LE(sim.effectiveThreads(), static_cast<int>(hw));
  EXPECT_GE(sim.effectiveThreads(), 1);

  // With the escape hatch the request is honored (up to the pool cap and
  // the node count), which is what the determinism tests above rely on.
  Simulator sim2(g);
  sim2.setThreads(8);
  sim2.setAllowOversubscribe(true);
  MixProtocol proto2(g.numNodes(), 4);
  sim2.run(proto2, 100);
  EXPECT_EQ(sim2.effectiveThreads(), 8);
}

TEST(SimThreads, ThreadsZeroResolvesToHardware) {
  const auto g = gridGraph(4);
  Simulator sim(g);
  sim.setThreads(0);
  sim.enableTrace();
  MixProtocol proto(g.numNodes(), 4);
  sim.run(proto, 100);
  const std::string hw = sim.trace();

  const RunResult serial = [] {
    const auto g2 = gridGraph(4);
    Simulator s(g2);
    s.enableTrace();
    MixProtocol p(g2.numNodes(), 4);
    RunResult r;
    r.rounds = s.run(p, 100);
    r.trace = s.trace();
    return r;
  }();
  EXPECT_EQ(hw, serial.trace);
}

}  // namespace
}  // namespace hybrid::sim
