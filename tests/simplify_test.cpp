#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "geom/segment.hpp"
#include "geom/simplify.hpp"

namespace hybrid::geom {
namespace {

TEST(DouglasPeucker, KeepsEndpointsAndSalientVertices) {
  // A spike in an otherwise straight line must survive a small tolerance.
  const std::vector<Vec2> line{{0, 0}, {1, 0.01}, {2, 0}, {3, 2.0}, {4, 0}, {5, -0.01},
                               {6, 0}};
  const auto kept = douglasPeucker(line, 0.1);
  EXPECT_EQ(kept.front(), 0);
  EXPECT_EQ(kept.back(), 6);
  EXPECT_NE(std::find(kept.begin(), kept.end(), 3), kept.end());  // the spike
  EXPECT_LT(kept.size(), line.size());
}

TEST(DouglasPeucker, ZeroToleranceKeepsNonCollinear) {
  const std::vector<Vec2> zig{{0, 0}, {1, 1}, {2, 0}, {3, 1}};
  const auto kept = douglasPeucker(zig, 0.0);
  EXPECT_EQ(kept.size(), zig.size());
}

TEST(DouglasPeucker, LargeToleranceKeepsOnlyEndpoints) {
  std::vector<Vec2> wiggly;
  for (int i = 0; i <= 20; ++i) {
    wiggly.push_back({static_cast<double>(i), (i % 2 == 0) ? 0.0 : 0.05});
  }
  const auto kept = douglasPeucker(wiggly, 1.0);
  EXPECT_EQ(kept.size(), 2u);
}

TEST(DouglasPeucker, ErrorIsBounded) {
  // Property: every dropped point lies within epsilon of the simplified
  // polyline.
  std::mt19937 rng(4);
  std::uniform_real_distribution<double> d(-1.0, 1.0);
  std::vector<Vec2> pts;
  for (int i = 0; i <= 60; ++i) {
    pts.push_back({static_cast<double>(i) * 0.5, 2.0 * std::sin(i * 0.3) + 0.2 * d(rng)});
  }
  const double eps = 0.4;
  const auto kept = douglasPeucker(pts, eps);
  for (int i = 0; i < static_cast<int>(pts.size()); ++i) {
    double best = 1e18;
    for (std::size_t k = 0; k + 1 < kept.size(); ++k) {
      const Segment seg{pts[static_cast<std::size_t>(kept[k])],
                        pts[static_cast<std::size_t>(kept[k + 1])]};
      best = std::min(best, pointSegmentDistance(pts[static_cast<std::size_t>(i)], seg));
    }
    EXPECT_LE(best, eps + 1e-9) << "point " << i;
  }
}

TEST(DouglasPeuckerRing, SimplifiesClosedRings) {
  // A circle sampled densely: tolerance keeps a sparse, ordered subset.
  std::vector<Vec2> circle;
  for (int i = 0; i < 100; ++i) {
    const double a = 2.0 * 3.141592653589793 * i / 100.0;
    circle.push_back({10.0 * std::cos(a), 10.0 * std::sin(a)});
  }
  const auto kept = douglasPeuckerRing(circle, 0.5);
  EXPECT_GE(kept.size(), 6u);
  EXPECT_LT(kept.size(), 40u);
  // Indices are a valid ring order: strictly increasing after rotation.
  for (std::size_t i = 0; i + 1 < kept.size(); ++i) {
    EXPECT_NE(kept[i], kept[i + 1]);
  }
}

TEST(DouglasPeuckerRing, TinyRingsUntouched) {
  const std::vector<Vec2> tri{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(douglasPeuckerRing(tri, 10.0).size(), 3u);
}

}  // namespace
}  // namespace hybrid::geom
