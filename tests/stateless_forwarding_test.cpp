#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "graph/csr.hpp"
#include "graph/dijkstra_workspace.hpp"
#include "graph/graph.hpp"
#include "routing/hub_labels.hpp"
#include "routing/node_labels.hpp"
#include "routing/stateless_router.hpp"

namespace hybrid::routing {
namespace {

/// Jittered w x h grid with 4-neighbor edges (same shape as hub_label_test:
/// irregular weights, many equal-degree nodes).
graph::CsrAdjacency makeGrid(int w, int h, unsigned seed,
                             std::vector<geom::Vec2>* posOut = nullptr) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> jitter(-0.3, 0.3);
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      pos.push_back({x + jitter(rng), y + jitter(rng)});
    }
  }
  std::vector<std::vector<int>> adj(pos.size());
  const auto id = [&](int x, int y) { return y * w + x; };
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (x + 1 < w) {
        adj[static_cast<std::size_t>(id(x, y))].push_back(id(x + 1, y));
        adj[static_cast<std::size_t>(id(x + 1, y))].push_back(id(x, y));
      }
      if (y + 1 < h) {
        adj[static_cast<std::size_t>(id(x, y))].push_back(id(x, y + 1));
        adj[static_cast<std::size_t>(id(x, y + 1))].push_back(id(x, y));
      }
    }
  }
  if (posOut) *posOut = pos;
  return graph::buildCsr(adj, pos);
}

/// n nodes on a unit circle, consecutive edges only.
graph::CsrAdjacency makeRing(int n) {
  std::vector<geom::Vec2> pos;
  pos.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double a = 2.0 * M_PI * i / n;
    pos.push_back({std::cos(a), std::sin(a)});
  }
  std::vector<std::vector<int>> adj(pos.size());
  for (int i = 0; i < n; ++i) {
    const int j = (i + 1) % n;
    adj[static_cast<std::size_t>(i)].push_back(j);
    adj[static_cast<std::size_t>(j)].push_back(i);
  }
  return graph::buildCsr(adj, pos);
}

/// Sum of CSR edge weights along `path`; -1 when a step is not an edge.
double walkLength(const graph::CsrAdjacency& csr, const std::vector<graph::NodeId>& path) {
  double len = 0.0;
  for (std::size_t k = 0; k + 1 < path.size(); ++k) {
    const auto nbs = csr.neighbors(path[k]);
    const auto wts = csr.edgeWeights(path[k]);
    double step = -1.0;
    for (std::size_t e = 0; e < nbs.size(); ++e) {
      if (nbs[e] == path[k + 1]) step = wts[e];
    }
    if (step < 0.0) return -1.0;
    len += step;
  }
  return len;
}

TEST(StatelessForwarding, LabelsAreByteIdenticalAtAnyThreadCount) {
  const auto csr = makeGrid(14, 13, 9);
  HubLabelOracle oracle;
  oracle.build(csr, 1);
  NodeLabels ref;
  ref.build(oracle);
  ASSERT_TRUE(ref.built());
  ASSERT_EQ(ref.numEntries(), oracle.numEntries());
  for (const unsigned threads : {2u, 5u, 16u}) {
    HubLabelOracle other;
    other.build(csr, threads);
    NodeLabels labels;
    labels.build(other);
    EXPECT_TRUE(labels == ref) << "threads=" << threads;
  }
}

TEST(StatelessForwarding, HopWalkRealizesExactDistances) {
  for (const bool ring : {false, true}) {
    const auto csr = ring ? makeRing(301) : makeGrid(15, 14, 3);
    const int n = static_cast<int>(csr.numNodes());
    HubLabelOracle oracle;
    oracle.build(csr, 3);
    NodeLabels labels;
    labels.build(oracle);
    const StatelessRouter router{NodeLabels(labels)};

    std::mt19937 rng(17);
    std::uniform_int_distribution<int> pick(0, n - 1);
    for (int a = 0; a < 60; ++a) {
      const int s = pick(rng);
      const int t = a == 0 ? s : pick(rng);
      const double want = oracle.distance(s, t);
      const RouteResult r = router.route(s, t);
      ASSERT_TRUE(r.delivered) << "ring=" << ring << " " << s << "->" << t;
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front(), s);
      EXPECT_EQ(r.path.back(), t);
      const double len = walkLength(csr, r.path);
      ASSERT_GE(len, 0.0) << "non-edge hop " << s << "->" << t;
      EXPECT_NEAR(len, want, 1e-9 * std::max(1.0, want)) << s << "->" << t;
    }
  }
}

TEST(StatelessForwarding, PerNodeLabelsStaySublinear) {
  // The whole point of forwarding from per-node state: each node carries a
  // small label, not the O(n) row a dense table would need. Rings are
  // polylog (hashed rank tie-break); grids pay their Theta(sqrt n)
  // treewidth, so the honest grid bound is O(sqrt(n) log n).
  for (const bool ring : {false, true}) {
    const auto csr = ring ? makeRing(2048) : makeGrid(45, 45, 21);
    const auto n = static_cast<double>(csr.numNodes());
    HubLabelOracle oracle;
    oracle.build(csr, 2);
    NodeLabels labels;
    labels.build(oracle);
    const double avgEntries = static_cast<double>(labels.numEntries()) / n;
    const double bound = ring ? 8.0 * std::log2(n) : 2.0 * std::sqrt(n) * std::log2(n);
    EXPECT_LT(avgEntries, bound) << "ring=" << ring;
    // 20 bytes/entry; per-node budget below the 8B*n of a dense row.
    EXPECT_LT(labels.bytesPerNode(), 8.0 * n) << "ring=" << ring;
    EXPECT_LT(labels.maxLabelSize(), csr.numNodes()) << "ring=" << ring;
  }
}

TEST(StatelessForwarding, DisconnectedPairsFailClean) {
  // Two triangles with no connecting edge: no common hub, so the very
  // first nextHop query fails and the walk stops at the source.
  const std::vector<geom::Vec2> pos = {{0, 0}, {1, 0}, {0, 1}, {10, 10}, {11, 10}, {10, 11}};
  std::vector<std::vector<int>> adj(6);
  const auto link = [&](int a, int b) {
    adj[static_cast<std::size_t>(a)].push_back(b);
    adj[static_cast<std::size_t>(b)].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(2, 0);
  link(3, 4);
  link(4, 5);
  link(5, 3);
  HubLabelOracle oracle;
  oracle.build(graph::buildCsr(adj, pos), 2);
  NodeLabels labels;
  labels.build(oracle);
  const StatelessRouter router{std::move(labels)};
  const RouteResult r = router.route(0, 4);
  EXPECT_FALSE(r.delivered);
  ASSERT_EQ(r.path.size(), 1u);
  EXPECT_EQ(r.path.front(), 0);
  EXPECT_TRUE(router.route(2, 1).delivered);  // within-component still exact
}

TEST(StatelessForwarding, RouteBatchMatchesSerialAtAnyThreadCount) {
  const auto csr = makeGrid(12, 12, 31);
  const int n = static_cast<int>(csr.numNodes());
  HubLabelOracle oracle;
  oracle.build(csr, 2);
  NodeLabels labels;
  labels.build(oracle);
  const StatelessRouter router{std::move(labels)};

  std::mt19937 rng(5);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::vector<RoutePair> pairs;
  for (int i = 0; i < 200; ++i) pairs.push_back({pick(rng), pick(rng)});

  std::vector<RouteResult> serial;
  serial.reserve(pairs.size());
  for (const RoutePair& p : pairs) serial.push_back(router.route(p.source, p.target));
  for (const int threads : {1, 2, 5}) {
    const auto batch = router.routeBatch(pairs, threads);
    ASSERT_EQ(batch.size(), serial.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(batch[i].delivered, serial[i].delivered) << "threads=" << threads << " i=" << i;
      EXPECT_EQ(batch[i].path, serial[i].path) << "threads=" << threads << " i=" << i;
    }
  }
}

TEST(StatelessForwarding, CorruptNextHopFailsCleanNotForever) {
  const auto csr = makeGrid(9, 9, 13);
  const int n = static_cast<int>(csr.numNodes());
  HubLabelOracle oracle;
  oracle.build(csr, 2);
  NodeLabels labels;
  labels.build(oracle);
  StatelessRouter router{std::move(labels)};
  const auto hit = router.mutableLabelsForTest().corruptNextHopForTest(40);
  ASSERT_GE(hit.node, 0);
  ASSERT_NE(hit.node, hit.hub);
  // Every query still terminates; anything delivered is still a real walk
  // of the exact length (corruption may sit on an unused entry for most
  // targets), anything else fails clean within the hop guard.
  for (int t = 0; t < n; ++t) {
    const RouteResult r = router.route(hit.node, t);
    EXPECT_LE(r.path.size(), static_cast<std::size_t>(n) + 2);
    if (!r.delivered) continue;
    EXPECT_EQ(r.path.back(), t);
    const double len = walkLength(csr, r.path);
    ASSERT_GE(len, 0.0);
    const double want = oracle.distance(hit.node, t);
    EXPECT_NEAR(len, want, 1e-9 * std::max(1.0, want));
  }
}

TEST(StatelessForwarding, FromEntriesRoundTripsTheSlab) {
  const auto csr = makeGrid(8, 7, 2);
  HubLabelOracle oracle;
  oracle.build(csr, 2);
  NodeLabels built;
  built.build(oracle);
  std::vector<std::vector<NodeLabels::Entry>> perNode;
  perNode.reserve(built.numNodes());
  for (std::size_t v = 0; v < built.numNodes(); ++v) {
    perNode.push_back(built.entriesOf(static_cast<int>(v)));
  }
  const NodeLabels rebuilt = NodeLabels::fromEntries(perNode);
  EXPECT_TRUE(rebuilt == built);
  EXPECT_EQ(rebuilt.labelBytes(), built.labelBytes());
  EXPECT_EQ(rebuilt.maxLabelSize(), built.maxLabelSize());
}

TEST(StatelessForwarding, GraphConstructorMatchesOraclePipeline) {
  // The convenience ctor (UDG in, router out) must serve the same labels
  // as the explicit oracle pipeline, at any build thread count.
  std::vector<geom::Vec2> pos;
  std::mt19937 rng(77);
  std::uniform_real_distribution<double> coord(0.0, 6.0);
  for (int i = 0; i < 60; ++i) pos.push_back({coord(rng), coord(rng)});
  graph::GeometricGraph g(pos);
  for (std::size_t u = 0; u < pos.size(); ++u) {
    for (std::size_t v = u + 1; v < pos.size(); ++v) {
      if (geom::dist(pos[u], pos[v]) <= 1.4) {
        g.addEdge(static_cast<graph::NodeId>(u), static_cast<graph::NodeId>(v));
      }
    }
  }
  const StatelessRouter a(g, 1);
  const StatelessRouter b(g, 4);
  EXPECT_TRUE(a.labels() == b.labels());
  HubLabelOracle oracle;
  oracle.build(graph::buildCsr(g), 2);
  NodeLabels labels;
  labels.build(oracle);
  EXPECT_TRUE(labels == a.labels());
}

}  // namespace
}  // namespace hybrid::routing
