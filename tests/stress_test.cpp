// Larger-scale smoke: the full pipeline at ~20k nodes must build in
// seconds, stay planar, and route reliably. Catches accidental quadratic
// blowups that small tests miss.

#include <gtest/gtest.h>

#include <chrono>
#include <random>

#include "core/hybrid_network.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "testkit/rng.hpp"

namespace hybrid {
namespace {

TEST(Stress, TwentyThousandNodes) {
  auto params = scenario::paramsForNodeCount(20000, 777);
  const double side = params.width;
  params.obstacles.push_back(
      scenario::regularPolygonObstacle({0.3 * side, 0.3 * side}, 0.08 * side, 6));
  params.obstacles.push_back(scenario::rectangleObstacle(
      {0.55 * side, 0.55 * side}, {0.75 * side, 0.7 * side}));
  params.obstacles.push_back(
      scenario::regularPolygonObstacle({0.7 * side, 0.25 * side}, 0.07 * side, 8));
  const auto sc = scenario::makeScenario(params);
  ASSERT_GT(sc.points.size(), 15000u);

  const auto t0 = std::chrono::steady_clock::now();
  core::HybridNetwork net(sc.points);
  const auto buildMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  // Keep construction comfortably sub-minute even on slow CI machines.
  EXPECT_LT(buildMs, 60000) << "construction took " << buildMs << " ms";
  EXPECT_EQ(net.ldelResult().removedCrossings, 0);

  auto rng = testkit::loggedRng("stress-routes", 5);
  std::uniform_int_distribution<int> pick(0, static_cast<int>(sc.points.size()) - 1);
  int fallbacks = 0;
  for (int it = 0; it < 40; ++it) {
    const int s = pick(rng);
    const int t = pick(rng);
    const auto r = net.route(s, t);
    ASSERT_TRUE(r.delivered);
    EXPECT_LT(net.stretch(r, s, t), 36.0);
    fallbacks += r.fallbacks;
  }
  EXPECT_LE(fallbacks, 4);
}

}  // namespace
}  // namespace hybrid
