#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/svg_export.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"

namespace hybrid::io {
namespace {

TEST(SvgExport, WritesWellFormedDocument) {
  scenario::ScenarioParams p;
  p.width = p.height = 10.0;
  p.seed = 12;
  p.obstacles.push_back(scenario::regularPolygonObstacle({5, 5}, 1.8, 6));
  const auto sc = scenario::makeScenario(p);
  core::HybridNetwork net(sc.points);

  const auto route = net.route(0, static_cast<int>(sc.points.size()) - 1);
  SvgExporter svg(net);
  svg.drawObstacles(sc.obstacles)
      .drawNetwork()
      .drawHoles()
      .drawAbstractions()
      .drawRoute(route, "#2c8a4b");

  const std::string path = ::testing::TempDir() + "svg_export_test.svg";
  ASSERT_TRUE(svg.save(path));

  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  // One circle per node plus hull markers and route endpoints.
  std::size_t circles = 0;
  for (std::size_t pos = 0; (pos = doc.find("<circle", pos)) != std::string::npos; ++pos) {
    ++circles;
  }
  EXPECT_GE(circles, net.ldel().numNodes());
  // Edges as polylines, holes/hulls/obstacles as polygons.
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SvgExport, FailsOnUnwritablePath) {
  const auto sc = scenario::makeScenario(scenario::paramsForNodeCount(100, 1));
  core::HybridNetwork net(sc.points);
  SvgExporter svg(net);
  EXPECT_FALSE(svg.save("/nonexistent-dir/x.svg"));
}

}  // namespace
}  // namespace hybrid::io
