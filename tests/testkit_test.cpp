#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <set>

#include "testkit/corpus.hpp"
#include "testkit/generators.hpp"
#include "testkit/harness.hpp"
#include "testkit/oracles.hpp"
#include "testkit/rng.hpp"
#include "testkit/shrink.hpp"

namespace {

using namespace hybrid;
using namespace hybrid::testkit;

/// Seed/trial budget for the injected-bug acceptance test, chosen so the
/// drop-overlay-waypoint defect fires within the first few trials and the
/// failing scenario shrinks quickly. If the generators ever change, re-pick
/// with: fuzz_router --inject-bug drop-overlay-waypoint --trials 8 --seed S
constexpr std::uint64_t kInjectAcceptanceSeed = 5;
constexpr int kInjectAcceptanceTrials = 8;

/// Unique scratch directory under the build tree, wiped per test.
std::filesystem::path scratchDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "hybrid-testkit" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(Testkit, SplitMixAndDeriveSeedAreStable) {
  std::uint64_t s = 0;
  const std::uint64_t first = splitmix64(s);
  EXPECT_EQ(first, 0xE220A8397B1DCDAFull);  // reference vector of splitmix64(0)

  // Different salts give independent-looking streams; same inputs repeat.
  const std::uint64_t a = deriveSeed(42, 0);
  const std::uint64_t b = deriveSeed(42, 1);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, deriveSeed(42, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t t = 0; t < 100; ++t) seen.insert(deriveSeed(7, t));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Testkit, LoggedRngIsDeterministic) {
  auto a = loggedRng("testkit-self-check", 123);
  auto b = loggedRng("testkit-self-check", 123);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), b());
}

TEST(Testkit, GeneratorsAreDeterministicAndWellFormed) {
  for (const auto& g : generators()) {
    SCOPED_TRACE(g.name);
    const auto s1 = g.make(99);
    const auto s2 = g.make(99);
    ASSERT_EQ(s1.points.size(), s2.points.size());
    for (std::size_t i = 0; i < s1.points.size(); ++i) {
      EXPECT_EQ(s1.points[i].x, s2.points[i].x);
      EXPECT_EQ(s1.points[i].y, s2.points[i].y);
    }
    EXPECT_GE(s1.points.size(), 4u);
    EXPECT_GT(s1.radius, 0.0);
    // A different seed must actually change the deployment.
    const auto s3 = g.make(100);
    const bool differs = s1.points.size() != s3.points.size() ||
                         s1.points[0].x != s3.points[0].x ||
                         s1.points[0].y != s3.points[0].y;
    EXPECT_TRUE(differs);
    EXPECT_NE(findGenerator(g.name), nullptr);
  }
  EXPECT_EQ(findGenerator("no-such-generator"), nullptr);
}

TEST(Testkit, CorpusJsonRoundTripsBitExactly) {
  CorpusCase c;
  c.generator = "hull_tangent";
  c.seed = 0xDEADBEEFCAFEBABEull;
  c.oracle = "overlay_parity";
  c.note = "line1\nwith \"quotes\" and \\backslash\t.";
  c.scenario = makeCase(5, 7).scenario;

  const auto parsed = fromJson(toJson(c));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->generator, c.generator);
  EXPECT_EQ(parsed->seed, c.seed);
  EXPECT_EQ(parsed->oracle, c.oracle);
  EXPECT_EQ(parsed->note, c.note);
  EXPECT_EQ(parsed->scenario.radius, c.scenario.radius);
  ASSERT_EQ(parsed->scenario.points.size(), c.scenario.points.size());
  for (std::size_t i = 0; i < c.scenario.points.size(); ++i) {
    EXPECT_EQ(parsed->scenario.points[i].x, c.scenario.points[i].x);
    EXPECT_EQ(parsed->scenario.points[i].y, c.scenario.points[i].y);
  }
  ASSERT_EQ(parsed->scenario.obstacles.size(), c.scenario.obstacles.size());
  for (std::size_t i = 0; i < c.scenario.obstacles.size(); ++i) {
    ASSERT_EQ(parsed->scenario.obstacles[i].size(), c.scenario.obstacles[i].size());
  }

  // Save/load through a real file too.
  const auto dir = scratchDir("roundtrip");
  const std::string path = (dir / "case.json").string();
  ASSERT_TRUE(saveCase(path, c));
  const auto loaded = loadCase(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(toJson(*loaded), toJson(c));
  EXPECT_EQ(listCorpus(dir.string()).size(), 1u);
}

TEST(Testkit, CorpusRejectsMalformedInput) {
  EXPECT_FALSE(fromJson("").has_value());
  EXPECT_FALSE(fromJson("{}").has_value());  // no points
  EXPECT_FALSE(fromJson("{\"radius\": 0, \"points\": [[1, 2]]}").has_value());
  EXPECT_FALSE(fromJson("{\"radius\": -1, \"points\": [[1, 2]]}").has_value());
  EXPECT_FALSE(fromJson("{\"radius\": 1, \"points\": [[1,").has_value());
  EXPECT_FALSE(loadCase("/nonexistent/path/case.json").has_value());
  EXPECT_TRUE(listCorpus("/nonexistent/dir").empty());
  // Unknown keys are tolerated (forward compatibility).
  const auto c = fromJson(
      "{\"radius\": 1.0, \"points\": [[0,0],[1,0]], \"future_key\": {\"x\": [1, \"y\"]}}");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->scenario.points.size(), 2u);
}

TEST(Testkit, ShrinkerFindsSmallFailingScenario) {
  // Synthetic "bug": fails whenever the scenario still has >= 20 nodes.
  // The shrinker should walk a ~500-node deployment down to a scenario
  // near that threshold without ever accepting a passing candidate.
  const auto big = makeCase(0, 11).scenario;
  ASSERT_GE(big.points.size(), 60u);
  int evals = 0;
  const auto fails = [&](const scenario::Scenario& s) {
    ++evals;
    return s.points.size() >= 20;
  };
  ShrinkOptions opts;
  opts.minNodes = 8;
  const auto r = shrinkScenario(big, fails, opts);
  EXPECT_TRUE(r.shrunk);
  EXPECT_GE(r.scenario.points.size(), 20u);
  EXPECT_LE(r.scenario.points.size(), 40u);
  EXPECT_EQ(r.evaluations, evals);
  EXPECT_LE(evals, opts.maxEvaluations);

  // Deterministic: same input, same result.
  const auto r2 = shrinkScenario(big, [](const scenario::Scenario& s) {
    return s.points.size() >= 20;
  }, opts);
  EXPECT_EQ(r2.scenario.points.size(), r.scenario.points.size());
}

TEST(Testkit, OracleRegistryAndBugNamesRoundTrip) {
  EXPECT_EQ(oracles().size(), 12u);
  for (const auto& o : oracles()) EXPECT_EQ(findOracle(o.name), &o);
  EXPECT_EQ(findOracle("nope"), nullptr);
  for (const InjectedBug b :
       {InjectedBug::None, InjectedBug::DropOverlayWaypoint,
        InjectedBug::InflateOverlayDistance, InjectedBug::SwapDeliveryOrder,
        InjectedBug::DropLabelHub, InjectedBug::WrongNextHop,
        InjectedBug::DropBBoxCorner}) {
    EXPECT_EQ(parseInjectedBug(bugName(b)), b);
  }
  EXPECT_EQ(parseInjectedBug("garbage"), InjectedBug::None);
}

TEST(Testkit, CleanCasesPassAllOraclesAndSummaryIsThreadInvariant) {
  FuzzOptions opts;
  opts.seed = 3;
  opts.trials = 9;  // one case per generator
  opts.threads = 1;
  const auto s1 = runFuzz(opts);
  EXPECT_TRUE(s1.allPassed()) << s1.report();
  opts.threads = 4;
  const auto s4 = runFuzz(opts);
  EXPECT_EQ(s1.report(), s4.report());
}

// The end-to-end acceptance path: a deliberately planted routing bug must
// be caught by an oracle, shrunk to a small scenario, recorded as JSON,
// and the recorded case must replay clean once the bug is gone.
TEST(Testkit, InjectedBugIsCaughtShrunkAndRecorded) {
  const auto dir = scratchDir("inject");
  FuzzOptions opts;
  opts.seed = kInjectAcceptanceSeed;
  opts.trials = kInjectAcceptanceTrials;
  opts.threads = 2;
  opts.bug = InjectedBug::DropOverlayWaypoint;
  opts.corpusDir = dir.string();
  const auto summary = runFuzz(opts);
  ASSERT_FALSE(summary.failures.empty()) << summary.report();

  bool sawSmallReplayable = false;
  for (const auto& f : summary.failures) {
    EXPECT_EQ(f.oracle, "overlay_parity");
    EXPECT_LE(f.shrunkNodes, f.originalNodes);
    if (f.corpusPath.empty() || f.shrunkNodes > 25) continue;
    const auto c = loadCase(f.corpusPath);
    ASSERT_TRUE(c.has_value()) << f.corpusPath;
    EXPECT_EQ(c->oracle, "overlay_parity");
    EXPECT_EQ(c->scenario.points.size(), f.shrunkNodes);
    // Replay WITHOUT the injected bug: the recorded case pins the current
    // (correct) behavior, so it must pass every oracle.
    EXPECT_EQ(replayCase(*c, 2), "") << f.corpusPath;
    sawSmallReplayable = true;
  }
  EXPECT_TRUE(sawSmallReplayable)
      << "no failure shrank to <= 25 nodes with a corpus file:\n"
      << summary.report();
}

}  // namespace
