#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/thread_pool.hpp"

namespace hybrid::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool;
  std::vector<std::atomic<int>> hits(100);
  pool.run(100, [&](unsigned t) { hits[t].fetch_add(1); });
  for (unsigned t = 0; t < 100; ++t) EXPECT_EQ(hits[t].load(), 1) << t;
}

TEST(ThreadPool, WorkersPersistAcrossJobs) {
  ThreadPool pool;
  std::atomic<long> sum{0};
  pool.run(8, [&](unsigned t) { sum.fetch_add(t); });
  const unsigned after = pool.workerCount();
  for (int i = 0; i < 50; ++i) {
    pool.run(8, [&](unsigned t) { sum.fetch_add(t); });
    // Re-running never spawns fresh threads: the whole point of the pool.
    EXPECT_EQ(pool.workerCount(), after);
  }
  EXPECT_EQ(sum.load(), 51l * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7));
}

TEST(ThreadPool, CallerThreadParticipates) {
  ThreadPool pool;
  const auto caller = std::this_thread::get_id();
  std::atomic<bool> callerRan{false};
  // One task, one caller: no worker is needed or woken.
  pool.run(1, [&](unsigned) {
    if (std::this_thread::get_id() == caller) callerRan.store(true);
  });
  EXPECT_TRUE(callerRan.load());
  EXPECT_EQ(pool.workerCount(), 0u);
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool;
  int calls = 0;
  pool.run(0, [&](unsigned) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, LowestTaskIndexExceptionWins) {
  ThreadPool pool;
  std::atomic<int> completed{0};
  try {
    pool.run(16, [&](unsigned t) {
      if (t % 2 == 1) throw std::runtime_error("task " + std::to_string(t));
      completed.fetch_add(1);
    });
    FAIL() << "expected run() to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 1");
  }
  // Every non-throwing task still ran before the rethrow.
  EXPECT_EQ(completed.load(), 8);
}

TEST(ThreadPool, UsableAfterAnExceptionJob) {
  ThreadPool pool;
  EXPECT_THROW(pool.run(4, [](unsigned) { throw std::logic_error("boom"); }),
               std::logic_error);
  std::atomic<int> ok{0};
  pool.run(4, [&](unsigned) { ok.fetch_add(1); });
  EXPECT_EQ(ok.load(), 4);
}

TEST(ThreadPool, GlobalPoolIsSingleInstance) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(ThreadPool, ManyTasksAreDistributed) {
  // More tasks than workers: dynamic pulling must drain them all.
  ThreadPool pool;
  std::mutex m;
  std::set<unsigned> seen;
  pool.run(1000, [&](unsigned t) {
    const std::lock_guard<std::mutex> lock(m);
    seen.insert(t);
  });
  EXPECT_EQ(seen.size(), 1000u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 999u);
}

}  // namespace
}  // namespace hybrid::util
