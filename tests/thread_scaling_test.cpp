// Thread-scaling regression tests for the two parallel hot paths: the
// destination-sharded simulator rounds and Router::routeBatch.
//
// Two layers:
//  - Determinism (always on, TSan included): traces / batch results at
//    {1, 2, 4, 8} threads are byte-identical to serial.
//  - Wall clock (Release-only, no sanitizers, >= 2 hardware threads):
//    stepping with every core must beat 1 thread outright. Debug and
//    sanitizer builds skip — their overhead is not what we gate.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/hybrid_network.hpp"
#include "delaunay/udg.hpp"
#include "scenario/generator.hpp"
#include "scenario/shapes.hpp"
#include "sim/simulator.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HYBRID_TEST_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define HYBRID_TEST_SANITIZED 1
#endif
#endif
#ifndef HYBRID_TEST_SANITIZED
#define HYBRID_TEST_SANITIZED 0
#endif

namespace hybrid {
namespace {

graph::GeometricGraph gridGraph(int side) {
  std::vector<geom::Vec2> pts;
  pts.reserve(static_cast<std::size_t>(side) * static_cast<std::size_t>(side));
  for (int y = 0; y < side; ++y) {
    for (int x = 0; x < side; ++x) pts.push_back({0.9 * x, 0.9 * y});
  }
  return delaunay::buildUnitDiskGraph(pts, 1.0);
}

/// e17-style round workload: neighbor gossip with ID introductions plus
/// occasional long-range replies, and a per-message compute kernel so the
/// wall-clock comparison measures parallel protocol work, not only the
/// simulator's own bookkeeping.
class GossipProtocol : public sim::Protocol {
 public:
  GossipProtocol(std::size_t n, int rounds, int workPerMessage)
      : rounds_(rounds), work_(workPerMessage), heard_(n, 0), digest_(n, 0) {}

  void onStart(sim::Context& ctx) override { gossip(ctx); }

  void onMessage(sim::Context& ctx, const sim::Message& m) override {
    const auto self = static_cast<std::size_t>(ctx.self());
    ++heard_[self];
    std::uint64_t h = digest_[self] ^ static_cast<std::uint64_t>(m.from * 2654435761u);
    for (int i = 0; i < work_; ++i) h = h * 1099511628211ull + 1469598103934665603ull;
    digest_[self] = h;
    if (m.type == kGossip && !m.ids.empty() && heard_[self] % 3 == 0) {
      const int target = m.ids.back();
      if (target != ctx.self() && ctx.knows(target)) {
        sim::Message reply;
        reply.type = kReply;
        reply.ints = {static_cast<std::int64_t>(h & 0xffff)};
        ctx.sendLongRange(target, std::move(reply));
      }
    }
  }

  void onRoundEnd(sim::Context& ctx) override {
    if (ctx.round() < rounds_) gossip(ctx);
  }

  std::uint64_t fingerprint() const {
    std::uint64_t f = 1469598103934665603ull;
    for (std::size_t v = 0; v < digest_.size(); ++v) {
      f = (f ^ digest_[v] ^ static_cast<std::uint64_t>(heard_[v])) * 1099511628211ull;
    }
    return f;
  }

 private:
  static constexpr int kGossip = 1;
  static constexpr int kReply = 2;

  void gossip(sim::Context& ctx) {
    const auto nbs = ctx.udgNeighbors();
    for (std::size_t i = 0; i < nbs.size(); ++i) {
      sim::Message m;
      m.type = kGossip;
      m.ints = {static_cast<std::int64_t>(ctx.round())};
      m.ids.push_back(nbs[(i + 1) % nbs.size()]);
      ctx.sendAdHoc(nbs[i], std::move(m));
    }
  }

  int rounds_;
  int work_;
  std::vector<long> heard_;
  std::vector<std::uint64_t> digest_;
};

struct SimRun {
  std::string trace;
  long totalMessages = 0;
  std::uint64_t fingerprint = 0;
  int rounds = 0;
};

SimRun runSim(const graph::GeometricGraph& g, int threads, int rounds, bool trace,
              int workPerMessage) {
  sim::Simulator sim(g);
  sim.setThreads(threads);
  sim.setAllowOversubscribe(true);  // the determinism layer must not quietly
                                    // degrade to serial on small boxes
  if (trace) sim.enableTrace();
  GossipProtocol proto(g.numNodes(), rounds, workPerMessage);
  SimRun r;
  r.rounds = sim.run(proto, rounds + 4);
  r.trace = sim.trace();
  r.totalMessages = sim.totalMessages();
  r.fingerprint = proto.fingerprint();
  return r;
}

TEST(ThreadScaling, SimTraceByteIdenticalAtOneTwoFourEightThreads) {
  const auto g = gridGraph(12);
  const SimRun serial = runSim(g, 1, 10, true, 16);
  ASSERT_FALSE(serial.trace.empty());
  for (const int t : {2, 4, 8}) {
    const SimRun parallel = runSim(g, t, 10, true, 16);
    EXPECT_EQ(parallel.trace, serial.trace) << "threads=" << t;
    EXPECT_EQ(parallel.totalMessages, serial.totalMessages) << "threads=" << t;
    EXPECT_EQ(parallel.fingerprint, serial.fingerprint) << "threads=" << t;
    EXPECT_EQ(parallel.rounds, serial.rounds) << "threads=" << t;
  }
}

core::HybridNetwork batchNetwork() {
  scenario::ScenarioParams p;
  p.width = p.height = 14.0;
  p.seed = 77;
  p.obstacles.push_back(scenario::uShapeObstacle({7.0, 6.0}, 4.0, 3.5, 0.8));
  const auto sc = scenario::makeScenario(p);
  return core::HybridNetwork(sc.points);
}

std::vector<routing::RoutePair> batchPairs(const core::HybridNetwork& net, int count) {
  std::vector<routing::RoutePair> pairs;
  const int n = static_cast<int>(net.ldel().numNodes());
  pairs.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) pairs.push_back({(7 * i) % n, (13 * i + 5) % n});
  return pairs;
}

bool sameResult(const routing::RouteResult& a, const routing::RouteResult& b) {
  return a.path == b.path && a.delivered == b.delivered &&
         a.blockedHole == b.blockedHole && a.fallbacks == b.fallbacks &&
         a.bayExtremePoints == b.bayExtremePoints && a.protocolCase == b.protocolCase;
}

TEST(ThreadScaling, RouteBatchIdenticalAtOneTwoFourEightThreads) {
  const auto net = batchNetwork();
  const auto router = net.makeRouter(
      {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
  const auto pairs = batchPairs(net, 96);
  const auto serial = router->routeBatch(pairs, 1);
  ASSERT_EQ(serial.size(), pairs.size());
  for (const int t : {2, 4, 8}) {
    const auto parallel = router->routeBatch(pairs, t);
    ASSERT_EQ(parallel.size(), serial.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(sameResult(serial[i], parallel[i])) << "threads=" << t << " pair " << i;
    }
  }
}

#if defined(NDEBUG) && !HYBRID_TEST_SANITIZED
constexpr bool kWallClockEligible = true;
#else
constexpr bool kWallClockEligible = false;
#endif

template <typename F>
double bestOfSeconds(int reps, F&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

TEST(ThreadScaling, SimRoundsWallClockBeatsSerial) {
  if (!kWallClockEligible) {
    GTEST_SKIP() << "wall-clock assertion runs in Release without sanitizers only";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) GTEST_SKIP() << "needs >= 2 hardware threads";
  const int threads = static_cast<int>(std::min(8u, hw));  // no oversubscription
  const auto g = gridGraph(40);
  const double serial = bestOfSeconds(3, [&] { runSim(g, 1, 24, false, 64); });
  const double parallel =
      bestOfSeconds(3, [&] { runSim(g, threads, 24, false, 64); });
  EXPECT_LT(parallel, serial) << "threads=" << threads << " serial=" << serial
                              << "s parallel=" << parallel << "s";
}

TEST(ThreadScaling, RouteBatchWallClockBeatsSerial) {
  if (!kWallClockEligible) {
    GTEST_SKIP() << "wall-clock assertion runs in Release without sanitizers only";
  }
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw < 2) GTEST_SKIP() << "needs >= 2 hardware threads";
  const int threads = static_cast<int>(std::min(8u, hw));
  const auto net = batchNetwork();
  const auto router = net.makeRouter(
      {routing::SiteMode::HullNodes, routing::EdgeMode::Visibility, true});
  const auto pairs = batchPairs(net, 2048);
  const double serial = bestOfSeconds(3, [&] { router->routeBatch(pairs, 1); });
  const double parallel = bestOfSeconds(3, [&] { router->routeBatch(pairs, threads); });
  EXPECT_LT(parallel, serial) << "threads=" << threads << " serial=" << serial
                              << "s parallel=" << parallel << "s";
}

}  // namespace
}  // namespace hybrid
