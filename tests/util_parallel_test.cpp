#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <stdexcept>

#include "util/parallel.hpp"

namespace hybrid::util {
namespace {

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  parallelChunks(n, 4, [&](std::size_t b, std::size_t e, unsigned) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(Parallel, ChunkOrderIsDeterministic) {
  // Collect (chunkIndex, begin, end) and verify chunks are contiguous,
  // ordered and disjoint.
  std::mutex m;
  std::vector<std::array<std::size_t, 3>> chunks;
  parallelChunks(5000, 3, [&](std::size_t b, std::size_t e, unsigned c) {
    const std::lock_guard<std::mutex> lock(m);
    chunks.push_back({static_cast<std::size_t>(c), b, e});
  });
  std::sort(chunks.begin(), chunks.end());
  std::size_t expectBegin = 0;
  for (const auto& [c, b, e] : chunks) {
    EXPECT_EQ(b, expectBegin);
    EXPECT_GT(e, b);
    expectBegin = e;
  }
  EXPECT_EQ(expectBegin, 5000u);
}

TEST(Parallel, ExplicitThreadCountHonoredForSmallInputs) {
  // An explicit thread count is honored whatever the input size: 8 chunks
  // cover [0, 100) exactly once. (Formerly inputs under a size threshold
  // silently collapsed to one inline call, which made thread counts lie.)
  std::mutex m;
  std::vector<std::array<std::size_t, 3>> chunks;
  parallelChunks(100, 8, [&](std::size_t b, std::size_t e, unsigned c) {
    const std::lock_guard<std::mutex> lock(m);
    chunks.push_back({static_cast<std::size_t>(c), b, e});
  });
  EXPECT_EQ(chunks.size(), 8u);
  std::sort(chunks.begin(), chunks.end());
  std::size_t expectBegin = 0;
  for (const auto& [c, b, e] : chunks) {
    EXPECT_EQ(b, expectBegin);
    EXPECT_GT(e, b);
    expectBegin = e;
  }
  EXPECT_EQ(expectBegin, 100u);
}

TEST(Parallel, ThreadsNeverExceedElements) {
  // More threads than elements: every element still visited exactly once,
  // and no chunk is empty.
  std::mutex m;
  std::vector<std::size_t> seen;
  parallelChunks(3, 16, [&](std::size_t b, std::size_t e, unsigned) {
    const std::lock_guard<std::mutex> lock(m);
    for (std::size_t i = b; i < e; ++i) seen.push_back(i);
    EXPECT_GT(e, b);
  });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 1, 2}));
}

TEST(Parallel, ZeroElements) {
  int calls = 0;
  parallelChunks(0, 4, [&](std::size_t b, std::size_t e, unsigned) {
    ++calls;
    EXPECT_EQ(b, e);
  });
  EXPECT_EQ(calls, 1);  // one empty inline call
}

TEST(Parallel, ResolveThreads) {
  EXPECT_EQ(resolveThreads(3), 3u);
  EXPECT_GE(resolveThreads(0), 1u);
  EXPECT_GE(resolveThreads(-1), 1u);
}

// Regression: a throwing worker used to escape its std::thread and take
// the whole process down via std::terminate. n must be >= 256 so the
// threaded path (not the inline fallback) runs.
TEST(Parallel, WorkerExceptionPropagatesToCaller) {
  const std::size_t n = 4096;
  std::atomic<int> completed{0};
  try {
    parallelChunks(n, 4, [&](std::size_t, std::size_t, unsigned c) {
      if (c == 2) throw std::runtime_error("chunk 2 failed");
      completed.fetch_add(1);
    });
    FAIL() << "expected parallelChunks to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "chunk 2 failed");
  }
  // The other workers still ran to completion (join-before-rethrow).
  EXPECT_EQ(completed.load(), 3);
}

TEST(Parallel, AllWorkersThrowRethrowsFirstChunk) {
  try {
    parallelChunks(4096, 4, [&](std::size_t, std::size_t, unsigned c) {
      throw std::runtime_error("chunk " + std::to_string(c));
    });
    FAIL() << "expected parallelChunks to rethrow";
  } catch (const std::runtime_error& e) {
    // Deterministic pick: the lowest chunk index wins, whatever the
    // threads' finishing order.
    EXPECT_STREQ(e.what(), "chunk 0");
  }
}

TEST(Parallel, InlinePathExceptionAlsoPropagates) {
  // Below the threading threshold the call runs inline; the exception
  // contract is the same.
  EXPECT_THROW(
      parallelChunks(10, 4, [](std::size_t, std::size_t, unsigned) {
        throw std::logic_error("inline");
      }),
      std::logic_error);
}

}  // namespace
}  // namespace hybrid::util
