// Property-based fuzzing driver for the hybrid-routing pipeline.
//
// Runs N seeded trials; each trial generates an adversarial scenario (one
// of the testkit generators, round-robin), builds the full pipeline and
// checks every differential oracle and paper invariant. Failing cases are
// greedily shrunk and written as replayable JSON into the corpus directory,
// where corpus_regression_test picks them up forever after.
//
// The run is deterministic: `fuzz_router --trials 500 --seed 1` prints the
// same summary on every invocation and at every --threads value (the
// parallel code paths under test are thread-count-invariant — that
// invariance is itself one of the properties checked).
//
// Examples:
//   fuzz_router --trials 500 --seed 1
//   fuzz_router --trials 50 --seed 7 --corpus tests/corpus
//   fuzz_router --trials 25 --inject-bug drop-overlay-waypoint --corpus /tmp/corpus
//   fuzz_router --replay tests/corpus/some_case.json

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "testkit/harness.hpp"

namespace {

void usage() {
  std::printf(
      "usage: fuzz_router [options]\n"
      "  --trials N        number of trials (default 100)\n"
      "  --seed S          master seed; trial t uses deriveSeed(S, t) (default 1)\n"
      "  --threads K       thread count for the parallel paths under test (default 2)\n"
      "  --corpus DIR      shrink + record failing cases as JSON under DIR\n"
      "  --inject-bug B    plant a deliberate defect: drop-overlay-waypoint |\n"
      "                    inflate-overlay-distance | swap-delivery-order |\n"
      "                    drop-label-hub | wrong-next-hop | drop-bbox-corner\n"
      "                    (default none)\n"
      "  --table-mode M    site-pair backend the oracles route through:\n"
      "                    dense | labels | auto (default auto)\n"
      "  --router R        serving engine the batch-serving oracles exercise:\n"
      "                    centralized | stateless (default centralized)\n"
      "  --abstraction A   per-hole abstraction the oracles route through:\n"
      "                    hulls | bbox | auto (default hulls)\n"
      "  --shrink-min N    do not shrink below N nodes (default 8)\n"
      "  --replay FILE     replay one corpus case instead of fuzzing\n"
      "  --metrics FILE    enable observability and write an obs snapshot (JSON)\n"
      "  --list            list generators, oracles and injectable bugs\n"
      "  --verbose         per-trial progress lines\n");
}

int replay(const std::string& path, int threads) {
  const auto c = hybrid::testkit::loadCase(path);
  if (!c) {
    std::fprintf(stderr, "fuzz_router: cannot parse corpus case %s\n", path.c_str());
    return 2;
  }
  const std::string failure = hybrid::testkit::replayCase(*c, threads);
  if (failure.empty()) {
    std::printf("replay %s: pass (generator=%s seed=%llu n=%zu)\n", path.c_str(),
                c->generator.c_str(), static_cast<unsigned long long>(c->seed),
                c->scenario.points.size());
    return 0;
  }
  std::printf("replay %s: FAIL %s\n", path.c_str(), failure.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  hybrid::testkit::FuzzOptions opts;
  std::string replayPath;
  std::string metricsPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_router: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--trials") {
      opts.trials = std::atoi(value());
    } else if (arg == "--seed") {
      opts.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      opts.threads = std::atoi(value());
    } else if (arg == "--corpus") {
      opts.corpusDir = value();
    } else if (arg == "--inject-bug") {
      const char* name = value();
      opts.bug = hybrid::testkit::parseInjectedBug(name);
      if (opts.bug == hybrid::testkit::InjectedBug::None && std::strcmp(name, "none") != 0) {
        std::fprintf(stderr, "fuzz_router: unknown bug '%s'\n", name);
        return 2;
      }
    } else if (arg == "--table-mode") {
      const char* name = value();
      const auto mode = hybrid::routing::parseTableMode(name);
      if (!mode) {
        std::fprintf(stderr, "fuzz_router: unknown table mode '%s'\n", name);
        return 2;
      }
      opts.tableMode = *mode;
    } else if (arg == "--router") {
      const char* name = value();
      const auto kind = hybrid::testkit::parseRouterKind(name);
      if (!kind) {
        std::fprintf(stderr, "fuzz_router: unknown router '%s'\n", name);
        return 2;
      }
      opts.routerKind = *kind;
    } else if (arg == "--abstraction") {
      const char* name = value();
      const auto mode = hybrid::routing::parseAbstractionMode(name);
      if (!mode) {
        std::fprintf(stderr, "fuzz_router: unknown abstraction '%s'\n", name);
        return 2;
      }
      opts.abstractionMode = *mode;
    } else if (arg == "--shrink-min") {
      opts.shrink.minNodes = static_cast<std::size_t>(std::atoi(value()));
    } else if (arg == "--replay") {
      replayPath = value();
    } else if (arg == "--metrics") {
      metricsPath = value();
    } else if (arg == "--list") {
      std::printf("generators:\n");
      for (const auto& g : hybrid::testkit::generators()) std::printf("  %s\n", g.name);
      std::printf("oracles:\n");
      for (const auto& o : hybrid::testkit::oracles()) std::printf("  %s\n", o.name);
      std::printf(
          "bugs:\n  drop-overlay-waypoint\n  inflate-overlay-distance\n"
          "  swap-delivery-order\n  drop-label-hub\n  wrong-next-hop\n"
          "  drop-bbox-corner\n");
      std::printf("table modes:\n  dense\n  labels\n  auto\n");
      std::printf("routers:\n  centralized\n  stateless\n");
      std::printf("abstractions:\n  hulls\n  bbox\n  auto\n");
      return 0;
    } else if (arg == "--verbose") {
      opts.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "fuzz_router: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    }
  }

  if (!metricsPath.empty()) {
    if (!hybrid::obs::kCompiledIn) {
      std::fprintf(stderr,
                   "fuzz_router: --metrics requested but observability was compiled out "
                   "(HYBRID_OBS_DISABLED)\n");
      return 2;
    }
    hybrid::obs::setEnabled(true);
  }

  if (!replayPath.empty()) return replay(replayPath, opts.threads);

  if (!opts.corpusDir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(opts.corpusDir, ec);
    if (ec) {
      std::fprintf(stderr, "fuzz_router: cannot create corpus dir %s: %s\n",
                   opts.corpusDir.c_str(), ec.message().c_str());
      return 2;
    }
  }

  const auto summary = hybrid::testkit::runFuzz(opts);
  std::fputs(summary.report().c_str(), stdout);

  if (!metricsPath.empty()) {
    const auto snap = hybrid::obs::capture();
    if (!hybrid::obs::saveSnapshot(metricsPath, snap)) {
      std::fprintf(stderr, "fuzz_router: cannot write metrics snapshot %s\n",
                   metricsPath.c_str());
      return 2;
    }
    std::printf("metrics snapshot: %s (%zu counters, %zu gauges, %zu histograms, %zu spans)\n",
                metricsPath.c_str(), snap.counters.size(), snap.gauges.size(),
                snap.histograms.size(), snap.spans.size());
  }
  return summary.allPassed() ? 0 : 1;
}
