// Snapshot diff / perf-regression gate over obs snapshots (schema
// hybrid-obs/1, see src/obs/snapshot.hpp).
//
// Modes:
//   metrics_report diff BASE.json RUN.json [--top N]
//       Human-readable report of the largest relative changes between two
//       snapshots (counters + gauges), plus new/removed metrics.
//   metrics_report --check BASE.json RUN.json [RUN2.json ...]
//                  [--threshold F] [--filter SUBSTR]
//       CI gate. For every baseline gauge whose name contains SUBSTR
//       (default: every gauge), takes the best (max) value across the run
//       snapshots — higher-is-better metrics like queries_per_s or
//       speedup ratios — and fails (exit 1) when best < base * (1 - F).
//       Passing several runs makes the gate best-of-N noise tolerant.
//       Default threshold 0.25.
//   metrics_report --self-test
//       Proves the gate logic catches a synthetic regression and accepts
//       within-threshold noise; exits non-zero if the gate is broken.
//
// Examples:
//   metrics_report diff bench/baselines/e17.json /tmp/e17.json
//   metrics_report --check bench/baselines/e18.json r1.json r2.json r3.json \
//       --filter speedup --threshold 0.25

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/snapshot.hpp"

namespace {

using hybrid::obs::Snapshot;

void usage() {
  std::printf(
      "usage: metrics_report <mode>\n"
      "  diff BASE.json RUN.json [--top N]\n"
      "      top-N relative changes between two snapshots (default N=20)\n"
      "  --check BASE.json RUN.json [RUN2.json ...]\n"
      "          [--threshold F] [--filter SUBSTR]\n"
      "      fail (exit 1) when the best run value of any baseline gauge\n"
      "      matching SUBSTR drops more than F below baseline (default 0.25)\n"
      "  --self-test\n"
      "      verify the gate catches a synthetic regression\n");
}

std::optional<Snapshot> load(const std::string& path) {
  auto snap = hybrid::obs::loadSnapshot(path);
  if (!snap) std::fprintf(stderr, "metrics_report: cannot load snapshot %s\n", path.c_str());
  return snap;
}

struct Change {
  std::string kind;
  std::string name;
  double base = 0.0;
  double run = 0.0;
  double rel = 0.0;  // (run - base) / |base|; +inf for new-from-zero
};

double relChange(double base, double run) {
  if (base == run) return 0.0;
  if (base == 0.0) return run > 0 ? std::numeric_limits<double>::infinity()
                                  : -std::numeric_limits<double>::infinity();
  return (run - base) / std::fabs(base);
}

int runDiff(const Snapshot& base, const Snapshot& run, int top) {
  std::vector<Change> changes;
  std::vector<std::string> added;
  std::vector<std::string> removed;

  const auto collect = [&](const char* kind, const std::map<std::string, double>& b,
                           const std::map<std::string, double>& r) {
    for (const auto& [name, bv] : b) {
      const auto it = r.find(name);
      if (it == r.end()) {
        removed.push_back(std::string(kind) + " " + name);
        continue;
      }
      if (it->second != bv) {
        changes.push_back({kind, name, bv, it->second, relChange(bv, it->second)});
      }
    }
    for (const auto& [name, rv] : r) {
      if (!b.contains(name)) added.push_back(std::string(kind) + " " + name);
      (void)rv;
    }
  };

  const std::map<std::string, double> bc(base.counters.begin(), base.counters.end());
  const std::map<std::string, double> rc(run.counters.begin(), run.counters.end());
  collect("counter", bc, rc);
  const std::map<std::string, double> bg(base.gauges.begin(), base.gauges.end());
  const std::map<std::string, double> rg(run.gauges.begin(), run.gauges.end());
  collect("gauge", bg, rg);

  std::sort(changes.begin(), changes.end(), [](const Change& a, const Change& b2) {
    const double ra = std::fabs(a.rel);
    const double rb = std::fabs(b2.rel);
    if (ra != rb) return ra > rb;
    return a.name < b2.name;
  });

  if (changes.empty() && added.empty() && removed.empty()) {
    std::printf("snapshots identical (%zu counters, %zu gauges)\n", bc.size(),
                base.gauges.size());
    return 0;
  }
  std::printf("%-8s %-52s %14s %14s %9s\n", "kind", "metric", "base", "run", "change");
  int shown = 0;
  for (const Change& c : changes) {
    if (shown++ >= top) {
      std::printf("... %zu more changed metrics (--top %d shown)\n", changes.size(),
                  top);
      break;
    }
    if (std::isinf(c.rel)) {
      std::printf("%-8s %-52s %14.6g %14.6g %9s\n", c.kind.c_str(), c.name.c_str(), c.base,
                  c.run, c.rel > 0 ? "+inf" : "-inf");
    } else {
      std::printf("%-8s %-52s %14.6g %14.6g %+8.1f%%\n", c.kind.c_str(), c.name.c_str(),
                  c.base, c.run, c.rel * 100.0);
    }
  }
  for (const std::string& name : added) std::printf("new      %s\n", name.c_str());
  for (const std::string& name : removed) std::printf("removed  %s\n", name.c_str());
  return 0;
}

struct CheckResult {
  int checked = 0;
  std::vector<Change> regressions;
};

/// Gate core, separated so --self-test can exercise it without files.
CheckResult checkGate(const Snapshot& base, const std::vector<Snapshot>& runs,
                      const std::string& filter, double threshold) {
  CheckResult out;
  std::vector<std::map<std::string, double>> runGauges;
  runGauges.reserve(runs.size());
  for (const Snapshot& run : runs) {
    runGauges.emplace_back(run.gauges.begin(), run.gauges.end());
  }
  for (const auto& [name, baseVal] : base.gauges) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    double best = -std::numeric_limits<double>::infinity();
    bool found = false;
    for (const auto& gauges : runGauges) {
      const auto it = gauges.find(name);
      if (it == gauges.end()) continue;
      found = true;
      best = std::max(best, it->second);
    }
    if (!found) {
      // A metric that vanished from every run is itself a regression: the
      // bench silently stopped measuring it.
      out.regressions.push_back({"gauge", name, baseVal, 0.0, -1.0});
      ++out.checked;
      continue;
    }
    ++out.checked;
    if (baseVal > 0.0 && best < baseVal * (1.0 - threshold)) {
      out.regressions.push_back({"gauge", name, baseVal, best, relChange(baseVal, best)});
    }
  }
  std::sort(out.regressions.begin(), out.regressions.end(),
            [](const Change& a, const Change& b) { return a.rel < b.rel; });
  return out;
}

int runCheck(const Snapshot& base, const std::vector<Snapshot>& runs,
             const std::string& filter, double threshold) {
  const CheckResult res = checkGate(base, runs, filter, threshold);
  if (res.checked == 0) {
    std::fprintf(stderr,
                 "metrics_report: no baseline gauge matches filter '%s' -- nothing gated\n",
                 filter.c_str());
    return 2;
  }
  if (res.regressions.empty()) {
    std::printf("bench gate PASS: %d metric(s) within %.0f%% of baseline (best of %zu run(s))\n",
                res.checked, threshold * 100.0, runs.size());
    return 0;
  }
  std::printf("bench gate FAIL: %zu of %d metric(s) regressed more than %.0f%%\n",
              res.regressions.size(), res.checked, threshold * 100.0);
  std::printf("%-52s %14s %14s %9s\n", "metric", "base", "best-of-runs", "change");
  for (const Change& c : res.regressions) {
    std::printf("%-52s %14.6g %14.6g %+8.1f%%\n", c.name.c_str(), c.base, c.run,
                c.rel * 100.0);
  }
  return 1;
}

int selfTest() {
  const auto snapWith = [](std::vector<std::pair<std::string, double>> gauges) {
    Snapshot s;
    std::sort(gauges.begin(), gauges.end());
    s.gauges = std::move(gauges);
    return s;
  };
  const Snapshot base = snapWith({{"bench.x.speedup.a", 2.0},
                                  {"bench.x.speedup.b", 1.5},
                                  {"bench.x.items_per_s", 1e6}});

  // Run 1: 'a' regressed 40%, 'b' noisy-low. Run 2: 'b' recovers (best-of).
  const Snapshot run1 = snapWith({{"bench.x.speedup.a", 1.2},
                                  {"bench.x.speedup.b", 1.0},
                                  {"bench.x.items_per_s", 1e6}});
  const Snapshot run2 = snapWith({{"bench.x.speedup.a", 1.1},
                                  {"bench.x.speedup.b", 1.45},
                                  {"bench.x.items_per_s", 1e6}});

  const auto res = checkGate(base, {run1, run2}, "speedup", 0.25);
  if (res.checked != 2) {
    std::fprintf(stderr, "self-test: expected 2 gated metrics, got %d\n", res.checked);
    return 1;
  }
  if (res.regressions.size() != 1 || res.regressions[0].name != "bench.x.speedup.a") {
    std::fprintf(stderr, "self-test: gate missed the injected regression\n");
    return 1;
  }

  // Within-threshold noise must pass.
  const Snapshot noisy = snapWith({{"bench.x.speedup.a", 1.6},  // -20% < 25% threshold
                                   {"bench.x.speedup.b", 1.5},
                                   {"bench.x.items_per_s", 1e6}});
  if (!checkGate(base, {noisy}, "speedup", 0.25).regressions.empty()) {
    std::fprintf(stderr, "self-test: gate false-positived on within-threshold noise\n");
    return 1;
  }

  // A metric missing from every run must fail the gate.
  const Snapshot missing = snapWith({{"bench.x.speedup.b", 1.5}});
  if (checkGate(base, {missing}, "speedup", 0.25).regressions.empty()) {
    std::fprintf(stderr, "self-test: gate ignored a vanished metric\n");
    return 1;
  }

  std::printf("self-test pass: gate catches regressions, tolerates noise\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> positional;
  bool check = false;
  bool diff = false;
  double threshold = 0.25;
  std::string filter;
  int top = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "metrics_report: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--check") {
      check = true;
    } else if (arg == "diff") {
      diff = true;
    } else if (arg == "--self-test") {
      return selfTest();
    } else if (arg == "--threshold") {
      threshold = std::atof(value());
    } else if (arg == "--filter") {
      filter = value();
    } else if (arg == "--top") {
      top = std::atoi(value());
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "metrics_report: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      positional.push_back(arg);
    }
  }

  if (diff == check) {  // neither or both
    usage();
    return 2;
  }
  if (diff) {
    if (positional.size() != 2) {
      usage();
      return 2;
    }
    const auto base = load(positional[0]);
    const auto run = load(positional[1]);
    if (!base || !run) return 2;
    return runDiff(*base, *run, top);
  }

  if (positional.size() < 2) {
    usage();
    return 2;
  }
  const auto base = load(positional[0]);
  if (!base) return 2;
  std::vector<Snapshot> runs;
  for (std::size_t i = 1; i < positional.size(); ++i) {
    const auto run = load(positional[i]);
    if (!run) return 2;
    runs.push_back(*run);
  }
  return runCheck(*base, runs, filter, threshold);
}
